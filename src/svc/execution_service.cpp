#include "svc/execution_service.hpp"

#include <algorithm>
#include <deque>
#include <functional>
#include <thread>
#include <utility>

#include "core/params.hpp"
#include "core/registry.hpp"
#include "util/errors.hpp"

namespace quml::svc {

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::Queued: return "QUEUED";
    case JobStatus::Running: return "RUNNING";
    case JobStatus::Done: return "DONE";
    case JobStatus::Failed: return "FAILED";
    case JobStatus::Cancelled: return "CANCELLED";
  }
  return "UNKNOWN";
}

namespace detail {

/// Shared job state.  Lock order across the service is strictly
/// service mutex -> queue mutex -> record mutex; no path takes them in any
/// other order, and no lock is held across a Backend::run call.
struct JobRecord {
  JobId id = 0;
  core::JobBundle bundle;
  std::string engine;  // canonical name = queue key
  std::optional<sched::Decision> decision;
  sched::JobEstimate estimate;
  double backlog_contribution_us = 0.0;
  /// Internal worker task (sweep shards): when set, the worker runs it with
  /// its private Backend instance instead of backend->run(bundle).
  std::function<void(core::Backend*)> task;

  mutable std::mutex mutex;
  mutable std::condition_variable cv;
  JobStatus status = JobStatus::Queued;
  core::ExecutionResult result;
  std::exception_ptr failure;
};

/// Shared state of one parameter sweep: the prepared realization (or the
/// fallback bundle template), the binding matrix, and per-binding slots.
/// Workers claim bindings from `next` under the mutex, so sharding is
/// dynamic and load-balanced; per-binding seeds depend only on the index.
struct SweepState {
  core::JobBundle bundle;  // template (engine resolved; used by the fallback)
  std::string engine;      // canonical
  std::optional<sched::Decision> decision;
  std::shared_ptr<core::SweepRealization> realization;  // nullptr = fallback
  bool plan_cached = false;  // snapshot of (realization != nullptr) at submit:
                             // immutable, so handles read it without the lock
                             // even after the last shard drops the realization
  std::vector<std::vector<double>> bindings;
  std::uint64_t base_seed = 0;

  mutable std::mutex mutex;
  mutable std::condition_variable cv;
  std::vector<JobStatus> status;
  std::vector<core::ExecutionResult> results;
  std::vector<std::exception_ptr> failures;
  std::size_t next = 0;         // next unclaimed binding
  std::size_t terminal = 0;     // DONE + FAILED + CANCELLED
  std::size_t shards_live = 0;  // runner tasks not yet exited
  std::exception_ptr session_failure;  // first open_session() failure, if any
  bool cancelled = false;
};

thread_local bool t_on_worker_thread = false;

bool on_worker_thread() { return t_on_worker_thread; }

}  // namespace detail

using detail::JobRecord;

namespace {

JobStatus status_of(const JobRecord& rec) {
  std::lock_guard<std::mutex> lock(rec.mutex);
  return rec.status;
}

const JobRecord& require(const std::shared_ptr<JobRecord>& rec) {
  if (!rec) throw BackendError("operation on an invalid (default-constructed) JobHandle");
  return *rec;
}

}  // namespace

// --- JobHandle --------------------------------------------------------------

JobId JobHandle::id() const { return require(rec_).id; }

JobStatus JobHandle::status() const { return status_of(require(rec_)); }

std::string JobHandle::engine() const { return require(rec_).engine; }

std::optional<sched::Decision> JobHandle::decision() const { return require(rec_).decision; }

void JobHandle::wait() const {
  const JobRecord& rec = require(rec_);
  std::unique_lock<std::mutex> lock(rec.mutex);
  rec.cv.wait(lock, [&] { return is_terminal(rec.status); });
}

bool JobHandle::wait_for(std::chrono::milliseconds timeout) const {
  const JobRecord& rec = require(rec_);
  std::unique_lock<std::mutex> lock(rec.mutex);
  return rec.cv.wait_for(lock, timeout, [&] { return is_terminal(rec.status); });
}

core::ExecutionResult JobHandle::result() const {
  const JobRecord& rec = require(rec_);
  std::unique_lock<std::mutex> lock(rec.mutex);
  rec.cv.wait(lock, [&] { return is_terminal(rec.status); });
  if (rec.failure) std::rethrow_exception(rec.failure);
  if (rec.status == JobStatus::Cancelled)
    throw BackendError("job " + std::to_string(rec.id) + " was cancelled");
  return rec.result;
}

std::string JobHandle::error() const {
  const JobRecord& rec = require(rec_);
  std::lock_guard<std::mutex> lock(rec.mutex);
  if (!rec.failure) return "";
  try {
    std::rethrow_exception(rec.failure);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown failure";
  }
}

bool JobHandle::cancel() const {
  JobRecord& rec = const_cast<JobRecord&>(require(rec_));
  std::lock_guard<std::mutex> lock(rec.mutex);
  if (rec.status != JobStatus::Queued) return false;
  rec.status = JobStatus::Cancelled;
  rec.cv.notify_all();
  // The record stays in its FIFO; the worker that pops it skips execution
  // and settles the backlog accounting (single accounting path).
  return true;
}

// --- SweepHandle ------------------------------------------------------------

namespace {

using detail::SweepState;

const SweepState& require_sweep(const std::shared_ptr<SweepState>& state) {
  if (!state) throw BackendError("operation on an invalid (default-constructed) SweepHandle");
  return *state;
}

void check_index(const SweepState& state, std::size_t index) {
  if (index >= state.status.size())
    throw BackendError("sweep binding index " + std::to_string(index) + " out of range (" +
                       std::to_string(state.status.size()) + " bindings)");
}

}  // namespace

std::size_t SweepHandle::size() const { return require_sweep(state_).status.size(); }

std::string SweepHandle::engine() const { return require_sweep(state_).engine; }

std::optional<sched::Decision> SweepHandle::decision() const {
  return require_sweep(state_).decision;
}

bool SweepHandle::plan_cached() const { return require_sweep(state_).plan_cached; }

JobStatus SweepHandle::status(std::size_t index) const {
  const SweepState& state = require_sweep(state_);
  check_index(state, index);
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.status[index];
}

std::size_t SweepHandle::completed() const {
  const SweepState& state = require_sweep(state_);
  std::lock_guard<std::mutex> lock(state.mutex);
  return state.terminal;
}

void SweepHandle::wait() const {
  const SweepState& state = require_sweep(state_);
  std::unique_lock<std::mutex> lock(state.mutex);
  state.cv.wait(lock, [&] { return state.terminal == state.status.size(); });
}

bool SweepHandle::wait_for(std::chrono::milliseconds timeout) const {
  const SweepState& state = require_sweep(state_);
  std::unique_lock<std::mutex> lock(state.mutex);
  return state.cv.wait_for(lock, timeout,
                           [&] { return state.terminal == state.status.size(); });
}

core::ExecutionResult SweepHandle::result(std::size_t index) const {
  const SweepState& state = require_sweep(state_);
  check_index(state, index);
  std::unique_lock<std::mutex> lock(state.mutex);
  state.cv.wait(lock, [&] { return is_terminal(state.status[index]); });
  if (state.failures[index]) std::rethrow_exception(state.failures[index]);
  if (state.status[index] == JobStatus::Cancelled)
    throw BackendError("sweep binding " + std::to_string(index) + " was cancelled");
  return state.results[index];
}

std::string SweepHandle::error(std::size_t index) const {
  const SweepState& state = require_sweep(state_);
  check_index(state, index);
  std::lock_guard<std::mutex> lock(state.mutex);
  if (!state.failures[index]) return "";
  try {
    std::rethrow_exception(state.failures[index]);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown failure";
  }
}

std::size_t SweepHandle::cancel() const {
  require_sweep(state_);
  SweepState& state = *state_;
  std::size_t cancelled = 0;
  {
    std::lock_guard<std::mutex> lock(state.mutex);
    state.cancelled = true;  // workers stop claiming new bindings
    for (std::size_t i = 0; i < state.status.size(); ++i) {
      if (state.status[i] != JobStatus::Queued) continue;
      state.status[i] = JobStatus::Cancelled;
      ++state.terminal;
      ++cancelled;
    }
  }
  if (cancelled > 0) state.cv.notify_all();
  return cancelled;
}

// --- ExecutionService -------------------------------------------------------

struct ExecutionService::BackendQueue {
  std::string engine;  // canonical
  std::mutex mutex;
  std::condition_variable cv;
  std::deque<std::shared_ptr<JobRecord>> fifo;
  double backlog_us = 0.0;  // queued + running estimated work
  bool stop = false;
  std::vector<std::thread> workers;
};

ExecutionService::ExecutionService(ServiceConfig config) : config_(std::move(config)) {
  // Touch the registry singleton now: it outlives this service even when the
  // service itself is a static (shared()), so workers joined during static
  // destruction can never see a destroyed registry.
  (void)core::BackendRegistry::instance();
}

ExecutionService::~ExecutionService() { shutdown(); }

ExecutionService& ExecutionService::shared() {
  static ExecutionService service([] {
    // Wide enough that concurrent legacy core::submit() callers keep the
    // parallelism they had when each call ran inline, without spawning an
    // unbounded pool on large hosts.
    ServiceConfig config;
    const unsigned hw = std::thread::hardware_concurrency();
    config.default_workers = static_cast<int>(std::min(8u, std::max(2u, hw)));
    return config;
  }());
  return service;
}

std::shared_ptr<JobRecord> ExecutionService::route(core::JobBundle bundle) {
  auto rec = std::make_shared<JobRecord>();
  const std::string requested =
      bundle.context ? bundle.context->exec.engine : std::string();
  if (requested.empty())
    throw BackendError("bundle has no exec.engine to dispatch on");

  auto& registry = core::BackendRegistry::instance();
  if (requested == "auto") {
    const sched::Decision decision =
        sched::choose_backend(bundle, capability_snapshot(), config_.weights);
    rec->engine = registry.canonical(decision.backend);
    bundle.context->exec.engine = decision.backend;  // late binding resolved
    rec->decision = decision;
  } else {
    rec->engine = registry.canonical(requested);  // throws when unknown
  }

  // Reuse one estimate for the backlog feed: what this job is expected to
  // add to its pool, from cost hints alone (sched never sees the circuit).
  const sched::BackendCapability cap =
      sched::BackendCapability::from_json(registry.capabilities(rec->engine));
  rec->estimate = sched::estimate(bundle, cap);
  rec->backlog_contribution_us = rec->estimate.feasible ? rec->estimate.duration_us : 0.0;
  rec->bundle = std::move(bundle);
  return rec;
}

ExecutionService::BackendQueue* ExecutionService::queue_for(const std::string& engine) {
  // Caller holds mutex_.
  auto it = queues_.find(engine);
  if (it != queues_.end()) return it->second.get();
  auto queue = std::make_unique<BackendQueue>();
  queue->engine = engine;
  BackendQueue* raw = queue.get();
  const int workers = config_.workers_for(engine);
  raw->workers.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w)
    raw->workers.emplace_back([this, raw] { worker_loop(raw); });
  queues_.emplace(engine, std::move(queue));
  return raw;
}

void ExecutionService::enqueue(const std::shared_ptr<JobRecord>& rec) {
  BackendQueue* queue = nullptr;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stopping_) throw BackendError("ExecutionService is shut down");
    rec->id = next_id_++;
    records_.emplace(rec->id, rec);
    if (rec->failure == nullptr) {
      queue = queue_for(rec->engine);
      ++outstanding_;
      // Push while still holding the service mutex (service -> queue is the
      // sanctioned nesting order): releasing it first would open a window
      // where shutdown() drains and joins the pool, and this job lands in a
      // dead queue as QUEUED forever.
      std::lock_guard<std::mutex> qlock(queue->mutex);
      queue->fifo.push_back(rec);
      queue->backlog_us += rec->backlog_contribution_us;
    }
  }
  if (queue) queue->cv.notify_one();
}

JobId ExecutionService::submit(core::JobBundle bundle) {
  auto rec = route(std::move(bundle));
  enqueue(rec);
  return rec->id;
}

std::vector<JobId> ExecutionService::submit_batch(std::vector<core::JobBundle> bundles) {
  std::vector<JobId> ids;
  ids.reserve(bundles.size());
  for (auto& bundle : bundles) {
    std::shared_ptr<JobRecord> rec;
    try {
      rec = route(std::move(bundle));
    } catch (...) {
      rec = std::make_shared<JobRecord>();
      rec->status = JobStatus::Failed;
      rec->failure = std::current_exception();
    }
    enqueue(rec);
    ids.push_back(rec->id);
  }
  return ids;
}

namespace {

/// Marks this shard exited; the last shard out fails any binding still
/// QUEUED (possible only when every session failed to open), so a sweep can
/// never hang in wait() with no worker left to run it.
void exit_sweep_shard(const std::shared_ptr<SweepState>& state) {
  bool notify = false;
  {
    std::lock_guard<std::mutex> lock(state->mutex);
    if (--state->shards_live > 0) return;
    // Last shard out: nothing can run anymore, so drop the sweep's largest
    // payloads — a long-lived SweepHandle keeps only statuses and results.
    state->bundle = core::JobBundle{};
    state->bindings.clear();
    state->bindings.shrink_to_fit();
    state->realization.reset();
    for (std::size_t i = 0; i < state->status.size(); ++i) {
      if (state->status[i] != JobStatus::Queued) continue;
      state->failures[i] =
          state->session_failure
              ? state->session_failure
              : std::make_exception_ptr(BackendError("no sweep worker session available"));
      state->status[i] = JobStatus::Failed;
      ++state->terminal;
      notify = true;
    }
  }
  if (notify) state->cv.notify_all();
}

/// One sweep shard: claims bindings from the shared state until exhausted or
/// cancelled.  Runs on a pool worker thread with that worker's private
/// Backend instance (used only by the per-binding fallback path).
void run_sweep_shard(const std::shared_ptr<SweepState>& state, core::Backend* backend) {
  std::unique_ptr<core::SweepSession> session;
  if (state->realization) {
    try {
      session = state->realization->open_session();
    } catch (...) {
      // A dead session must not race through the queue failing bindings a
      // healthy shard could run: record the error and bow out.  If every
      // shard dies this way, the last one out fails the leftovers.
      std::lock_guard<std::mutex> lock(state->mutex);
      if (!state->session_failure) state->session_failure = std::current_exception();
      session = nullptr;
    }
    if (!session) {
      exit_sweep_shard(state);
      return;
    }
  }
  for (;;) {
    std::size_t index;
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      if (state->cancelled || state->next >= state->bindings.size()) break;
      index = state->next++;
      state->status[index] = JobStatus::Running;
    }
    core::ExecutionResult result;
    std::exception_ptr failure;
    try {
      const std::uint64_t seed = core::sweep_seed(state->base_seed, index);
      if (session) {
        result = session->run_binding(state->bindings[index], seed);
      } else {
        core::JobBundle bound = core::bind_bundle(state->bundle, state->bindings[index]);
        if (!bound.context) bound.context = core::Context{};
        bound.context->exec.seed = seed;
        result = backend->run(bound);
      }
    } catch (...) {
      failure = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(state->mutex);
      state->failures[index] = failure;
      state->results[index] = std::move(result);
      state->status[index] = failure ? JobStatus::Failed : JobStatus::Done;
      ++state->terminal;
    }
    state->cv.notify_all();
  }
  exit_sweep_shard(state);
}

}  // namespace

SweepHandle ExecutionService::submit_sweep(core::JobBundle bundle,
                                           std::vector<std::vector<double>> bindings) {
  if (bindings.empty()) throw BackendError("submit_sweep needs at least one binding");
  const std::size_t width = bundle.parameters.size();
  for (const auto& row : bindings)
    if (row.size() != width)
      throw BackendError("sweep binding has " + std::to_string(row.size()) +
                         " values but the bundle declares " + std::to_string(width) +
                         " parameters");

  // Route once (resolves "auto" against the live backlog and validates the
  // engine), then ask the backend for a bind-once/run-many realization.
  auto probe = route(std::move(bundle));
  auto state = std::make_shared<SweepState>();
  state->engine = probe->engine;
  state->decision = probe->decision;
  state->bundle = std::move(probe->bundle);
  state->base_seed = state->bundle.exec_policy().seed;
  state->realization =
      core::BackendRegistry::instance().create(state->engine)->prepare_sweep(state->bundle);
  state->plan_cached = static_cast<bool>(state->realization);
  const std::size_t n = bindings.size();
  state->bindings = std::move(bindings);
  state->status.assign(n, JobStatus::Queued);
  state->results.resize(n);
  state->failures.resize(n);

  // Shard across the engine's pool: one claiming task per worker (dynamic
  // work-stealing by index, so uneven binding costs still balance).
  const std::size_t shards =
      std::min<std::size_t>(static_cast<std::size_t>(config_.workers_for(state->engine)), n);
  state->shards_live = shards;  // set before any shard can run and exit
  const double per_shard_us =
      probe->backlog_contribution_us * static_cast<double>(n) / static_cast<double>(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    auto rec = std::make_shared<JobRecord>();
    rec->engine = state->engine;
    rec->backlog_contribution_us = per_shard_us;
    rec->task = [state](core::Backend* backend) { run_sweep_shard(state, backend); };
    enqueue(rec);
    forget(rec->id);  // internal shard jobs are not client-visible
  }
  return SweepHandle(state);
}

JobHandle ExecutionService::handle(JobId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = records_.find(id);
  return it == records_.end() ? JobHandle() : JobHandle(it->second);
}

void ExecutionService::forget(JobId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  records_.erase(id);  // queues and handles hold their own shared_ptrs
}

double ExecutionService::backlog_us(const std::string& engine) const {
  const auto& registry = core::BackendRegistry::instance();
  const std::string key = registry.has(engine) ? registry.canonical(engine) : engine;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = queues_.find(key);
  if (it == queues_.end()) return 0.0;
  std::lock_guard<std::mutex> qlock(it->second->mutex);
  return it->second->backlog_us;
}

std::size_t ExecutionService::queue_depth(const std::string& engine) const {
  const auto& registry = core::BackendRegistry::instance();
  const std::string key = registry.has(engine) ? registry.canonical(engine) : engine;
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = queues_.find(key);
  if (it == queues_.end()) return 0;
  std::lock_guard<std::mutex> qlock(it->second->mutex);
  return it->second->fifo.size();
}

std::vector<sched::BackendCapability> ExecutionService::capability_snapshot() const {
  return sched::registry_capabilities([this](const std::string& name) { return backlog_us(name); });
}

void ExecutionService::finish(const std::shared_ptr<JobRecord>& rec, BackendQueue& queue) {
  {
    std::lock_guard<std::mutex> lock(queue.mutex);
    queue.backlog_us -= rec->backlog_contribution_us;
    if (queue.backlog_us < 0.0) queue.backlog_us = 0.0;  // guard FP drift
  }
  bool idle = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    idle = --outstanding_ == 0;
  }
  if (idle) idle_cv_.notify_all();
}

void ExecutionService::worker_loop(BackendQueue* queue) {
  // One Backend instance per worker: run() never races against itself, and
  // concurrent instances of the same engine must be independent (the
  // Backend concurrency contract in core/registry.hpp).
  std::unique_ptr<core::Backend> backend;
  detail::t_on_worker_thread = true;
  for (;;) {
    std::shared_ptr<JobRecord> rec;
    {
      std::unique_lock<std::mutex> lock(queue->mutex);
      queue->cv.wait(lock, [&] { return queue->stop || !queue->fifo.empty(); });
      if (queue->fifo.empty()) return;  // stop && drained
      rec = queue->fifo.front();
      queue->fifo.pop_front();
    }

    bool cancelled = false;
    {
      std::lock_guard<std::mutex> lock(rec->mutex);
      if (rec->status == JobStatus::Cancelled) {
        cancelled = true;
        // A job cancelled while queued never runs: drop its payload here so
        // a long-lived handle to it doesn't pin the bundle forever.
        rec->bundle = core::JobBundle{};
      } else {
        rec->status = JobStatus::Running;
      }
    }
    if (cancelled) {
      finish(rec, *queue);
      continue;
    }

    core::ExecutionResult result;
    std::exception_ptr failure;
    try {
      if (!backend) backend = core::BackendRegistry::instance().create(queue->engine);
      if (rec->task)
        rec->task(backend.get());
      else
        result = backend->run(rec->bundle);
    } catch (...) {
      failure = std::current_exception();
    }
    {
      std::lock_guard<std::mutex> lock(rec->mutex);
      rec->failure = failure;
      rec->result = std::move(result);
      rec->bundle = core::JobBundle{};  // release the job's largest payload
      rec->status = failure ? JobStatus::Failed : JobStatus::Done;
    }
    rec->cv.notify_all();
    finish(rec, *queue);
  }
}

void ExecutionService::wait_all() {
  std::unique_lock<std::mutex> lock(mutex_);
  idle_cv_.wait(lock, [&] { return outstanding_ == 0; });
}

void ExecutionService::shutdown() {
  std::vector<BackendQueue*> queues;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;  // no new queues can appear past this point
    for (auto& [_, queue] : queues_) queues.push_back(queue.get());
  }
  // Idempotent: join() consumes joinability, so a destructor following an
  // explicit shutdown() finds nothing left to join.
  for (BackendQueue* queue : queues) {
    {
      std::lock_guard<std::mutex> lock(queue->mutex);
      queue->stop = true;
    }
    queue->cv.notify_all();
  }
  for (BackendQueue* queue : queues)
    for (auto& worker : queue->workers)
      if (worker.joinable()) worker.join();
}

}  // namespace quml::svc

namespace quml::core {

// The historical blocking call, reimplemented as submit + wait on the
// process-wide service (declared in core/registry.hpp).  Failures propagate
// synchronously with their original exception types.  The job is forgotten
// once consumed so looping callers don't accumulate terminal records, and a
// call from inside a service worker (a backend running sub-jobs) executes
// inline — enqueueing onto the pool the worker itself is blocking would
// self-deadlock.
ExecutionResult submit(const JobBundle& bundle) {
  if (svc::detail::on_worker_thread()) {
    if (!bundle.context || bundle.context->exec.engine.empty())
      throw BackendError("bundle has no exec.engine to dispatch on");
    return BackendRegistry::instance().create(bundle.context->exec.engine)->run(bundle);
  }
  auto& service = svc::ExecutionService::shared();
  const svc::JobId id = service.submit(bundle);
  const svc::JobHandle job = service.handle(id);
  service.forget(id);
  return job.result();
}

}  // namespace quml::core

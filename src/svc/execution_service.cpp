#include "svc/execution_service.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <functional>
#include <thread>
#include <utility>

#include "analysis/passes.hpp"
#include "core/params.hpp"
#include "core/registry.hpp"
#include "util/errors.hpp"

namespace quml::svc {

const char* to_string(JobStatus status) {
  switch (status) {
    case JobStatus::Queued: return "QUEUED";
    case JobStatus::Running: return "RUNNING";
    case JobStatus::Done: return "DONE";
    case JobStatus::Failed: return "FAILED";
    case JobStatus::Cancelled: return "CANCELLED";
  }
  return "UNKNOWN";
}

namespace detail {

/// Shared job state.  Lock order across the service is strictly
/// service mutex -> queue mutex -> record mutex; no path takes them in any
/// other order, and no lock is held across a Backend::run call.
///
/// The fields above `mutex` are published-immutable: written by the
/// submitting thread before the record reaches the queue (enqueue()'s
/// critical section is the publication barrier) and never after, except
/// `bundle`, which the one worker that popped the record also clears once the
/// run is over — single-owner hand-off through the queue, so it needs no lock.
struct JobRecord {
  JobId id = 0;
  core::JobBundle bundle;
  std::string engine;  // canonical name = queue key
  std::optional<sched::Decision> decision;
  sched::JobEstimate estimate;
  double backlog_contribution_us = 0.0;
  /// Per-job retry/backoff/deadline knobs (exec.options), resolved at route
  /// time; the deadline is measured from `submitted`, so queue wait counts
  /// against the budget.
  RetryPolicy policy;
  std::uint64_t jitter_seed = 0;  // exec.seed: deterministic backoff jitter
  std::chrono::steady_clock::time_point submitted{};
  /// Internal worker task (sweep shards): when set, the worker runs it with
  /// its private Backend instance instead of backend->run(bundle).  The
  /// instance is nullptr when the worker could not create its backend; the
  /// task must cope rather than assume a live engine.
  std::function<void(core::Backend*)> task;

  mutable Mutex mutex;
  mutable CondVar cv;
  JobStatus status QUML_GUARDED_BY(mutex) = JobStatus::Queued;
  core::ExecutionResult result QUML_GUARDED_BY(mutex);
  std::exception_ptr failure QUML_GUARDED_BY(mutex);
  std::vector<Attempt> attempts QUML_GUARDED_BY(mutex);  // final audit trail
  std::string failover_engine QUML_GUARDED_BY(mutex);    // "" = none
};

/// The immutable inputs of one sweep: published before the first shard is
/// enqueued, read-only ever after.  Shards snapshot a shared_ptr to it under
/// the sweep mutex, so the last shard out can drop the SweepState's reference
/// (releasing the bundle/bindings/realization payload once every shard-local
/// snapshot dies) without racing a claim in flight.
struct SweepInputs {
  core::JobBundle bundle;  // template (engine resolved; used by the fallback)
  std::vector<std::vector<double>> bindings;
  std::shared_ptr<core::SweepRealization> realization;  // nullptr = fallback
  std::uint64_t base_seed = 0;
  /// Sweep-wide retry policy; bindings retry individually (no failover), and
  /// the deadline is shared — measured from the sweep's submission.
  RetryPolicy policy;
  std::chrono::steady_clock::time_point submitted{};
};

/// Shared state of one parameter sweep: the prepared inputs and per-binding
/// slots.  Workers claim bindings from `next` under the mutex, so sharding is
/// dynamic and load-balanced; per-binding seeds depend only on the index.
struct SweepState {
  // Published-immutable (set before the handle or any shard exists).
  std::string engine;  // canonical
  std::optional<sched::Decision> decision;
  bool plan_cached = false;  // snapshot of (realization != nullptr) at submit

  mutable Mutex mutex;
  mutable CondVar cv;
  std::shared_ptr<const SweepInputs> inputs QUML_GUARDED_BY(mutex);  // last shard out drops it
  std::vector<JobStatus> status QUML_GUARDED_BY(mutex);
  std::vector<core::ExecutionResult> results QUML_GUARDED_BY(mutex);
  std::vector<std::exception_ptr> failures QUML_GUARDED_BY(mutex);
  std::size_t next QUML_GUARDED_BY(mutex) = 0;      // next unclaimed binding
  std::size_t terminal QUML_GUARDED_BY(mutex) = 0;  // DONE + FAILED + CANCELLED
  std::size_t shards_live QUML_GUARDED_BY(mutex) = 0;  // runner tasks not yet exited
  std::exception_ptr session_failure QUML_GUARDED_BY(mutex);  // first open_session() failure
  bool cancelled QUML_GUARDED_BY(mutex) = false;
};

thread_local bool t_on_worker_thread = false;

bool on_worker_thread() { return t_on_worker_thread; }

}  // namespace detail

using detail::JobRecord;

namespace {

JobStatus status_of(const JobRecord& rec) {
  MutexLock lock(rec.mutex);
  return rec.status;
}

const JobRecord& require(const std::shared_ptr<JobRecord>& rec) {
  if (!rec) throw BackendError("operation on an invalid (default-constructed) JobHandle");
  return *rec;
}

}  // namespace

// --- JobHandle --------------------------------------------------------------

JobId JobHandle::id() const { return require(rec_).id; }

JobStatus JobHandle::status() const { return status_of(require(rec_)); }

std::string JobHandle::engine() const { return require(rec_).engine; }

std::optional<sched::Decision> JobHandle::decision() const { return require(rec_).decision; }

void JobHandle::wait() const {
  const JobRecord& rec = require(rec_);
  MutexLock lock(rec.mutex);
  while (!is_terminal(rec.status)) rec.cv.wait(rec.mutex);
}

bool JobHandle::wait_for(std::chrono::milliseconds timeout) const {
  const JobRecord& rec = require(rec_);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  MutexLock lock(rec.mutex);
  while (!is_terminal(rec.status))
    if (rec.cv.wait_until(rec.mutex, deadline) == std::cv_status::timeout)
      return is_terminal(rec.status);
  return true;
}

core::ExecutionResult JobHandle::result() const {
  const JobRecord& rec = require(rec_);
  MutexLock lock(rec.mutex);
  while (!is_terminal(rec.status)) rec.cv.wait(rec.mutex);
  if (rec.failure) std::rethrow_exception(rec.failure);
  if (rec.status == JobStatus::Cancelled)
    throw BackendError("job " + std::to_string(rec.id) + " was cancelled");
  return rec.result;
}

std::string JobHandle::error() const {
  const JobRecord& rec = require(rec_);
  MutexLock lock(rec.mutex);
  if (!rec.failure) return "";
  try {
    std::rethrow_exception(rec.failure);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown failure";
  }
}

ErrorKind JobHandle::error_kind() const {
  const JobRecord& rec = require(rec_);
  MutexLock lock(rec.mutex);
  if (rec.status == JobStatus::Cancelled) return ErrorKind::Cancelled;
  return classify_failure(rec.failure);
}

std::size_t JobHandle::attempts() const {
  const JobRecord& rec = require(rec_);
  MutexLock lock(rec.mutex);
  return rec.attempts.size();
}

std::vector<Attempt> JobHandle::attempt_log() const {
  const JobRecord& rec = require(rec_);
  MutexLock lock(rec.mutex);
  return rec.attempts;
}

std::string JobHandle::failover_engine() const {
  const JobRecord& rec = require(rec_);
  MutexLock lock(rec.mutex);
  return rec.failover_engine;
}

bool JobHandle::cancel() const {
  JobRecord& rec = const_cast<JobRecord&>(require(rec_));
  MutexLock lock(rec.mutex);
  if (rec.status != JobStatus::Queued) return false;
  rec.status = JobStatus::Cancelled;
  rec.cv.notify_all();
  // The record stays in its FIFO; the worker that pops it skips execution
  // and settles the backlog accounting (single accounting path).
  return true;
}

// --- SweepHandle ------------------------------------------------------------

namespace {

using detail::SweepState;

const SweepState& require_sweep(const std::shared_ptr<SweepState>& state) {
  if (!state) throw BackendError("operation on an invalid (default-constructed) SweepHandle");
  return *state;
}

void check_index(const SweepState& state, std::size_t index) QUML_REQUIRES(state.mutex) {
  if (index >= state.status.size())
    throw BackendError("sweep binding index " + std::to_string(index) + " out of range (" +
                       std::to_string(state.status.size()) + " bindings)");
}

}  // namespace

std::size_t SweepHandle::size() const {
  const SweepState& state = require_sweep(state_);
  MutexLock lock(state.mutex);
  return state.status.size();
}

std::string SweepHandle::engine() const { return require_sweep(state_).engine; }

std::optional<sched::Decision> SweepHandle::decision() const {
  return require_sweep(state_).decision;
}

bool SweepHandle::plan_cached() const { return require_sweep(state_).plan_cached; }

JobStatus SweepHandle::status(std::size_t index) const {
  const SweepState& state = require_sweep(state_);
  MutexLock lock(state.mutex);
  check_index(state, index);
  return state.status[index];
}

std::size_t SweepHandle::completed() const {
  const SweepState& state = require_sweep(state_);
  MutexLock lock(state.mutex);
  return state.terminal;
}

void SweepHandle::wait() const {
  const SweepState& state = require_sweep(state_);
  MutexLock lock(state.mutex);
  while (state.terminal != state.status.size()) state.cv.wait(state.mutex);
}

bool SweepHandle::wait_for(std::chrono::milliseconds timeout) const {
  const SweepState& state = require_sweep(state_);
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  MutexLock lock(state.mutex);
  while (state.terminal != state.status.size())
    if (state.cv.wait_until(state.mutex, deadline) == std::cv_status::timeout)
      return state.terminal == state.status.size();
  return true;
}

core::ExecutionResult SweepHandle::result(std::size_t index) const {
  const SweepState& state = require_sweep(state_);
  MutexLock lock(state.mutex);
  check_index(state, index);
  while (!is_terminal(state.status[index])) state.cv.wait(state.mutex);
  if (state.failures[index]) std::rethrow_exception(state.failures[index]);
  if (state.status[index] == JobStatus::Cancelled)
    throw BackendError("sweep binding " + std::to_string(index) + " was cancelled");
  return state.results[index];
}

std::string SweepHandle::error(std::size_t index) const {
  const SweepState& state = require_sweep(state_);
  MutexLock lock(state.mutex);
  check_index(state, index);
  if (!state.failures[index]) return "";
  try {
    std::rethrow_exception(state.failures[index]);
  } catch (const std::exception& e) {
    return e.what();
  } catch (...) {
    return "unknown failure";
  }
}

ErrorKind SweepHandle::error_kind(std::size_t index) const {
  const SweepState& state = require_sweep(state_);
  MutexLock lock(state.mutex);
  check_index(state, index);
  if (state.status[index] == JobStatus::Cancelled) return ErrorKind::Cancelled;
  return classify_failure(state.failures[index]);
}

std::size_t SweepHandle::cancel() const {
  require_sweep(state_);
  SweepState& state = *state_;
  std::size_t cancelled = 0;
  {
    MutexLock lock(state.mutex);
    state.cancelled = true;  // workers stop claiming new bindings
    for (std::size_t i = 0; i < state.status.size(); ++i) {
      if (state.status[i] != JobStatus::Queued) continue;
      state.status[i] = JobStatus::Cancelled;
      ++state.terminal;
      ++cancelled;
    }
  }
  if (cancelled > 0) state.cv.notify_all();
  return cancelled;
}

// --- ExecutionService -------------------------------------------------------

/// Per-engine FIFO + worker pool.  `workers` is written once while the
/// creating thread holds the service mutex (queue_for) and read only by
/// shutdown() after `stopping_` is set, which is why it sits outside the
/// queue mutex; everything the workers and producers share is guarded.
struct ExecutionService::BackendQueue {
  std::string engine;  // canonical; immutable after queue_for
  Mutex mutex;
  CondVar cv;
  std::deque<std::shared_ptr<JobRecord>> fifo QUML_GUARDED_BY(mutex);
  double backlog_us QUML_GUARDED_BY(mutex) = 0.0;  // queued + running estimated work
  bool stop QUML_GUARDED_BY(mutex) = false;
  std::vector<std::thread> workers;
};

ExecutionService::ExecutionService(ServiceConfig config)
    : config_(std::move(config)), breakers_(config_.breaker) {
  // Touch the registry singleton now: it outlives this service even when the
  // service itself is a static (shared()), so workers joined during static
  // destruction can never see a destroyed registry.
  (void)core::BackendRegistry::instance();
}

ExecutionService::~ExecutionService() { shutdown(); }

ExecutionService& ExecutionService::shared() {
  static ExecutionService service([] {
    // Wide enough that concurrent legacy core::submit() callers keep the
    // parallelism they had when each call ran inline, without spawning an
    // unbounded pool on large hosts.
    ServiceConfig config;
    const unsigned hw = std::thread::hardware_concurrency();
    config.default_workers = static_cast<int>(std::min(8u, std::max(2u, hw)));
    return config;
  }());
  return service;
}

std::shared_ptr<JobRecord> ExecutionService::route(
    core::JobBundle bundle, const std::vector<std::vector<double>>* sweep_bindings) {
  auto rec = std::make_shared<JobRecord>();
  const std::string requested =
      bundle.context ? bundle.context->exec.engine : std::string();
  if (requested.empty())
    throw BackendError("bundle has no exec.engine to dispatch on");

  auto& registry = core::BackendRegistry::instance();
  if (requested == "auto") {
    const sched::Decision decision =
        sched::choose_backend(bundle, capability_snapshot(), config_.weights);
    rec->engine = registry.canonical(decision.backend);
    bundle.context->exec.engine = decision.backend;  // late binding resolved
    rec->decision = decision;
  } else {
    rec->engine = registry.canonical(requested);  // throws when unknown
  }

  // Reuse one estimate for the backlog feed: what this job is expected to
  // add to its pool, from cost hints alone (sched never sees the circuit).
  const sched::BackendCapability cap =
      sched::BackendCapability::from_json(registry.capabilities(rec->engine));
  // Admission-time capacity check for explicitly requested gate engines
  // ("auto" routing already rejects infeasible fleets): a register wider than
  // the engine's cap fails here, before the job ever occupies a worker, with
  // the wide alternative named when one is registered.
  const unsigned width = bundle.registers.total_width();
  if (cap.kind == "gate" && cap.num_qubits > 0 && static_cast<int>(width) > cap.num_qubits) {
    std::string message = "bundle '" + bundle.job_id + "' needs " + std::to_string(width) +
                          " qubits but engine '" + rec->engine + "' caps at " +
                          std::to_string(cap.num_qubits);
    for (const sched::BackendCapability& other : capability_snapshot())
      if (other.kind == "gate" && other.num_qubits >= static_cast<int>(width)) {
        message += "; '" + other.name + "' admits this width (" +
                   std::to_string(other.num_qubits) + " qubits)";
        break;
      }
    throw ValidationError(message);
  }
  // Semantic admission: the error-severity analysis passes run synchronously
  // on the submitting thread, so a defective bundle (out-of-range carriers,
  // unbound sweep symbols, non-unitary matrices, dead clbits) is rejected
  // with instruction-level QA diagnostics before it can occupy a queue slot.
  analysis::AnalyzeOptions lint_options;
  lint_options.capability = cap;
  lint_options.bindings = sweep_bindings;
  lint_options.require_bound = sweep_bindings == nullptr;
  lint_options.resource_notes = false;  // notes can't reject; skip on the hot path
  const analysis::Report lint = analysis::analyze_bundle(bundle, lint_options);
  if (lint.has_errors())
    throw analysis::DiagnosticError("bundle '" + bundle.job_id + "' rejected at admission",
                                    lint.errors());
  rec->estimate = sched::estimate(bundle, cap);
  rec->backlog_contribution_us = rec->estimate.feasible ? rec->estimate.duration_us : 0.0;
  const core::ExecPolicy exec = bundle.exec_policy();
  rec->policy = RetryPolicy::from_exec(exec);
  rec->jitter_seed = exec.seed;
  rec->submitted = std::chrono::steady_clock::now();
  rec->bundle = std::move(bundle);
  return rec;
}

ExecutionService::BackendQueue* ExecutionService::queue_for(const std::string& engine) {
  auto it = queues_.find(engine);
  if (it != queues_.end()) return it->second.get();
  auto queue = std::make_unique<BackendQueue>();
  queue->engine = engine;
  BackendQueue* raw = queue.get();
  const int workers = config_.workers_for(engine);
  raw->workers.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w)
    raw->workers.emplace_back([this, raw] { worker_loop(raw); });
  queues_.emplace(engine, std::move(queue));
  return raw;
}

void ExecutionService::enqueue(const std::shared_ptr<JobRecord>& rec) {
  BackendQueue* queue = nullptr;
  {
    MutexLock lock(mutex_);
    if (stopping_) throw BackendError("ExecutionService is shut down");
    rec->id = next_id_++;
    records_.emplace(rec->id, rec);
    bool born_failed = false;
    {
      MutexLock rlock(rec->mutex);
      born_failed = rec->failure != nullptr;
    }
    if (!born_failed) {
      queue = queue_for(rec->engine);
      ++outstanding_;
      // Push while still holding the service mutex (service -> queue is the
      // sanctioned nesting order): releasing it first would open a window
      // where shutdown() drains and joins the pool, and this job lands in a
      // dead queue as QUEUED forever.
      MutexLock qlock(queue->mutex);
      queue->fifo.push_back(rec);
      queue->backlog_us += rec->backlog_contribution_us;
    }
  }
  if (queue) queue->cv.notify_one();
}

JobId ExecutionService::submit(core::JobBundle bundle) {
  auto rec = route(std::move(bundle));
  enqueue(rec);
  return rec->id;
}

std::vector<JobId> ExecutionService::submit_batch(std::vector<core::JobBundle> bundles) {
  std::vector<JobId> ids;
  ids.reserve(bundles.size());
  for (auto& bundle : bundles) {
    std::shared_ptr<JobRecord> rec;
    try {
      rec = route(std::move(bundle));
    } catch (...) {
      rec = std::make_shared<JobRecord>();
      MutexLock lock(rec->mutex);
      rec->status = JobStatus::Failed;
      rec->failure = std::current_exception();
    }
    enqueue(rec);
    ids.push_back(rec->id);
  }
  return ids;
}

namespace {

using detail::SweepInputs;

/// Marks this shard exited; the last shard out fails any binding still
/// QUEUED (possible only when every session failed to open), so a sweep can
/// never hang in wait() with no worker left to run it.
void exit_sweep_shard(const std::shared_ptr<SweepState>& state) {
  bool notify = false;
  {
    MutexLock lock(state->mutex);
    if (--state->shards_live > 0) return;
    // Last shard out: nothing can run anymore, so drop the sweep's reference
    // to its largest payloads (bundle, bindings, realization) — once every
    // shard-local snapshot dies, a long-lived SweepHandle keeps only
    // statuses and results.
    state->inputs.reset();
    for (std::size_t i = 0; i < state->status.size(); ++i) {
      if (state->status[i] != JobStatus::Queued) continue;
      state->failures[i] =
          state->session_failure
              ? state->session_failure
              : std::make_exception_ptr(BackendError("no sweep worker session available"));
      state->status[i] = JobStatus::Failed;
      ++state->terminal;
      notify = true;
    }
  }
  if (notify) state->cv.notify_all();
}

/// One sweep shard: claims bindings from the shared state until exhausted or
/// cancelled.  Runs on a pool worker thread with that worker's private
/// Backend instance — which is nullptr when the worker could not create its
/// backend; the shard then records the condition instead of claiming work it
/// cannot run (a silent exit here would strand the sweep: see
/// SweepWorkerBackendCreationFailureFailsBindings in tests/test_svc.cpp).
void run_sweep_shard(const std::shared_ptr<SweepState>& state, core::Backend* backend,
                     CircuitBreaker* breaker, const std::atomic<bool>* stop) {
  std::shared_ptr<const SweepInputs> inputs;
  {
    MutexLock lock(state->mutex);
    inputs = state->inputs;
  }
  if (!inputs) {  // every binding already settled (late-starting shard)
    exit_sweep_shard(state);
    return;
  }
  std::unique_ptr<core::SweepSession> session;
  if (inputs->realization) {
    try {
      session = inputs->realization->open_session();
    } catch (...) {
      // A dead session must not race through the queue failing bindings a
      // healthy shard could run: record the error and bow out.  If every
      // shard dies this way, the last one out fails the leftovers.
      MutexLock lock(state->mutex);
      if (!state->session_failure) state->session_failure = std::current_exception();
      session = nullptr;
    }
    if (!session) {
      exit_sweep_shard(state);
      return;
    }
  } else if (!backend) {
    // Fallback path with no engine to run it: record why and bow out.
    {
      MutexLock lock(state->mutex);
      if (!state->session_failure)
        state->session_failure = std::make_exception_ptr(
            BackendError("sweep worker could not create backend '" + state->engine + "'"));
    }
    exit_sweep_shard(state);
    return;
  }
  for (;;) {
    std::size_t index;
    {
      MutexLock lock(state->mutex);
      if (state->cancelled || state->next >= inputs->bindings.size()) break;
      index = state->next++;
      state->status[index] = JobStatus::Running;
    }
    // Each binding runs under the sweep's RetryPolicy (per-binding jitter
    // stream = its sweep seed); bindings never fail over — the sweep was
    // routed to one engine as a unit, and the shared realization is bound to
    // it.  The deadline, measured from the sweep's submission, is shared:
    // once it passes, every remaining binding settles as Deadline instead of
    // hanging the sweep.
    const std::uint64_t seed = core::sweep_seed(inputs->base_seed, index);
    RetryOutcome outcome = run_with_retry(
        inputs->policy, seed, inputs->submitted, state->engine, breaker, stop, 0, [&] {
          if (session) return session->run_binding(inputs->bindings[index], seed);
          core::JobBundle bound = core::bind_bundle(inputs->bundle, inputs->bindings[index]);
          if (!bound.context) bound.context = core::Context{};
          bound.context->exec.seed = seed;
          return backend->run(bound);
        });
    core::ExecutionResult result = std::move(outcome.result);
    std::exception_ptr failure = outcome.failure;
    {
      MutexLock lock(state->mutex);
      state->failures[index] = failure;
      state->results[index] = std::move(result);
      state->status[index] = failure ? JobStatus::Failed : JobStatus::Done;
      ++state->terminal;
    }
    state->cv.notify_all();
  }
  exit_sweep_shard(state);
}

}  // namespace

SweepHandle ExecutionService::submit_sweep(core::JobBundle bundle,
                                           std::vector<std::vector<double>> bindings) {
  if (bindings.empty()) throw BackendError("submit_sweep needs at least one binding");
  const std::size_t width = bundle.parameters.size();
  for (const auto& row : bindings)
    if (row.size() != width)
      throw BackendError("sweep binding has " + std::to_string(row.size()) +
                         " values but the bundle declares " + std::to_string(width) +
                         " parameters");

  // Route once (resolves "auto" against the live backlog, validates the
  // engine, and lint-checks the bundle against the binding rows), then ask
  // the backend for a bind-once/run-many realization.
  auto probe = route(std::move(bundle), &bindings);
  auto inputs = std::make_shared<SweepInputs>();
  inputs->bundle = std::move(probe->bundle);
  inputs->base_seed = inputs->bundle.exec_policy().seed;
  inputs->policy = probe->policy;
  inputs->submitted = probe->submitted;
  inputs->realization =
      core::BackendRegistry::instance().create(probe->engine)->prepare_sweep(inputs->bundle);
  const std::size_t n = bindings.size();
  inputs->bindings = std::move(bindings);

  auto state = std::make_shared<SweepState>();
  state->engine = probe->engine;
  state->decision = probe->decision;
  state->plan_cached = static_cast<bool>(inputs->realization);
  const double binding_us = probe->backlog_contribution_us;
  const std::size_t shards =
      std::min<std::size_t>(static_cast<std::size_t>(config_.workers_for(state->engine)), n);
  {
    MutexLock lock(state->mutex);
    state->inputs = std::move(inputs);
    state->status.assign(n, JobStatus::Queued);
    state->results.resize(n);
    state->failures.resize(n);
    // Set before any shard can run and exit: a shard that finishes while
    // later shards are still being enqueued must not look like the last one.
    state->shards_live = shards;
  }

  // Shard across the engine's pool: one claiming task per worker (dynamic
  // work-stealing by index, so uneven binding costs still balance).
  const double per_shard_us = binding_us * static_cast<double>(n) / static_cast<double>(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    auto rec = std::make_shared<JobRecord>();
    rec->engine = state->engine;
    rec->backlog_contribution_us = per_shard_us;
    rec->task = [this, state](core::Backend* backend) {
      run_sweep_shard(state, backend, &breakers_.breaker(state->engine), &stop_flag_);
    };
    try {
      enqueue(rec);
    } catch (...) {
      // Keep the sweep's invariants if a shard cannot be enqueued (service
      // shutting down): the shards that never started must not be waited
      // for, and nothing new should be claimed.
      {
        MutexLock lock(state->mutex);
        state->cancelled = true;
        state->shards_live -= shards - s;  // this shard and the ones after it
        if (state->shards_live == 0) state->inputs.reset();
        for (std::size_t i = 0; i < state->status.size(); ++i) {
          if (state->status[i] != JobStatus::Queued) continue;
          state->status[i] = JobStatus::Cancelled;
          ++state->terminal;
        }
      }
      state->cv.notify_all();
      throw;
    }
    forget(rec->id);  // internal shard jobs are not client-visible
  }
  return SweepHandle(state);
}

JobHandle ExecutionService::handle(JobId id) const {
  MutexLock lock(mutex_);
  const auto it = records_.find(id);
  return it == records_.end() ? JobHandle() : JobHandle(it->second);
}

void ExecutionService::forget(JobId id) {
  MutexLock lock(mutex_);
  records_.erase(id);  // queues and handles hold their own shared_ptrs
}

double ExecutionService::backlog_us(const std::string& engine) const {
  const auto& registry = core::BackendRegistry::instance();
  const std::string key = registry.has(engine) ? registry.canonical(engine) : engine;
  MutexLock lock(mutex_);
  const auto it = queues_.find(key);
  if (it == queues_.end()) return 0.0;
  MutexLock qlock(it->second->mutex);
  return it->second->backlog_us;
}

std::size_t ExecutionService::queue_depth(const std::string& engine) const {
  const auto& registry = core::BackendRegistry::instance();
  const std::string key = registry.has(engine) ? registry.canonical(engine) : engine;
  MutexLock lock(mutex_);
  const auto it = queues_.find(key);
  if (it == queues_.end()) return 0;
  MutexLock qlock(it->second->mutex);
  return it->second->fifo.size();
}

std::vector<sched::BackendCapability> ExecutionService::capability_snapshot() const {
  std::vector<sched::BackendCapability> fleet = sched::registry_capabilities(
      [this](const std::string& name) { return backlog_us(name); });
  for (sched::BackendCapability& cap : fleet)
    cap.health = to_string(breakers_.state(cap.name));
  return fleet;
}

CircuitBreaker::State ExecutionService::breaker_state(const std::string& engine) const {
  const auto& registry = core::BackendRegistry::instance();
  const std::string key = registry.has(engine) ? registry.canonical(engine) : engine;
  return breakers_.state(key);
}

void ExecutionService::finish(const std::shared_ptr<JobRecord>& rec, BackendQueue& queue) {
  {
    MutexLock lock(queue.mutex);
    queue.backlog_us -= rec->backlog_contribution_us;
    if (queue.backlog_us < 0.0) queue.backlog_us = 0.0;  // guard FP drift
  }
  bool idle = false;
  {
    MutexLock lock(mutex_);
    idle = --outstanding_ == 0;
  }
  if (idle) idle_cv_.notify_all();
}

void ExecutionService::worker_loop(BackendQueue* queue) {
  // One Backend instance per worker: run() never races against itself, and
  // concurrent instances of the same engine must be independent (the
  // Backend concurrency contract in core/registry.hpp).
  std::unique_ptr<core::Backend> backend;
  detail::t_on_worker_thread = true;
  for (;;) {
    std::shared_ptr<JobRecord> rec;
    {
      MutexLock lock(queue->mutex);
      while (!queue->stop && queue->fifo.empty()) queue->cv.wait(queue->mutex);
      if (queue->fifo.empty()) return;  // stop && drained
      rec = queue->fifo.front();
      queue->fifo.pop_front();
    }

    bool cancelled = false;
    {
      MutexLock lock(rec->mutex);
      if (rec->status == JobStatus::Cancelled) {
        cancelled = true;
        // A job cancelled while queued never runs: drop its payload here so
        // a long-lived handle to it doesn't pin the bundle forever.
        rec->bundle = core::JobBundle{};
      } else {
        rec->status = JobStatus::Running;
      }
    }
    if (cancelled) {
      finish(rec, *queue);
      continue;
    }

    core::ExecutionResult result;
    std::exception_ptr failure;
    std::vector<Attempt> attempts;
    std::string failover;
    try {
      if (!backend) backend = core::BackendRegistry::instance().create(queue->engine);
    } catch (...) {
      failure = std::current_exception();
    }
    try {
      if (rec->task) {
        // Internal tasks (sweep shards) run even when backend creation
        // failed: the shard must settle its share of the sweep's bindings,
        // or SweepHandle::wait() would block forever on a sweep no worker
        // will ever touch again.
        rec->task(backend.get());
      } else if (!failure) {
        RetryOutcome outcome = run_resilient(rec, *backend, failover);
        result = std::move(outcome.result);
        failure = outcome.failure;
        attempts = std::move(outcome.attempts);
      }
    } catch (...) {
      failure = std::current_exception();
    }
    {
      MutexLock lock(rec->mutex);
      rec->failure = failure;
      rec->result = std::move(result);
      rec->attempts = std::move(attempts);
      rec->failover_engine = std::move(failover);
      rec->bundle = core::JobBundle{};  // release the job's largest payload
      rec->status = failure ? JobStatus::Failed : JobStatus::Done;
    }
    rec->cv.notify_all();
    finish(rec, *queue);
  }
}

RetryOutcome ExecutionService::run_resilient(const std::shared_ptr<JobRecord>& rec,
                                             core::Backend& backend,
                                             std::string& failover_engine) {
  RetryOutcome outcome = run_with_retry(
      rec->policy, rec->jitter_seed, rec->submitted, rec->engine,
      &breakers_.breaker(rec->engine), &stop_flag_, 0,
      [&] { return backend.run(rec->bundle); });
  // Cross-engine failover is opt-in via the retry knob: a job that never
  // asked for resilience keeps the historical one-shot, one-engine
  // semantics.  Only transient exhaustion fails over — a permanent failure
  // or a blown deadline would fail anywhere.
  if (outcome.failure && outcome.kind == ErrorKind::Transient && rec->policy.max_retries > 0)
    failover_engine = failover_once(rec, outcome);
  return outcome;
}

std::string ExecutionService::failover_once(const std::shared_ptr<JobRecord>& rec,
                                            RetryOutcome& outcome) {
  const auto& registry = core::BackendRegistry::instance();
  std::string best;
  double best_score = 0.0;
  for (const sched::BackendCapability& cap : capability_snapshot()) {
    const std::string canonical =
        registry.has(cap.name) ? registry.canonical(cap.name) : cap.name;
    if (canonical == rec->engine) continue;
    // estimate() already rejects chaos backends, open breakers, wrong kinds
    // and widths the alternate cannot admit.
    const sched::JobEstimate est = sched::estimate(rec->bundle, cap);
    if (!est.feasible) continue;
    const double score =
        config_.weights.quality_weight * est.success_prob -
        config_.weights.time_weight * std::log10(std::max(est.duration_us, 1.0));
    if (best.empty() || score > best_score) {
      best = canonical;
      best_score = score;
    }
  }
  if (best.empty()) return "";  // nothing compatible: the primary failure stands
  const int next_index = outcome.attempts.empty() ? 0 : outcome.attempts.back().index + 1;
  std::unique_ptr<core::Backend> alternate;
  try {
    alternate = registry.create(best);
  } catch (const std::exception& e) {
    outcome.attempts.push_back({next_index, best,
                                std::string("failover backend creation failed: ") + e.what(),
                                classify_failure(std::current_exception())});
    return best;  // attempted; the primary transient failure stands
  }
  // Same policy, same deadline (wall-clock budget spans engines), a
  // decorrelated jitter stream, and attempt numbering that continues the
  // primary engine's count.
  RetryOutcome alt = run_with_retry(
      rec->policy, rec->jitter_seed ^ 0x517cc1b727220a95ull, rec->submitted, best,
      &breakers_.breaker(best), &stop_flag_, next_index,
      [&] { return alternate->run(rec->bundle); });
  for (Attempt& attempt : alt.attempts) outcome.attempts.push_back(std::move(attempt));
  outcome.result = std::move(alt.result);
  outcome.failure = alt.failure;
  outcome.kind = alt.kind;
  return best;
}

void ExecutionService::wait_all() {
  MutexLock lock(mutex_);
  while (outstanding_ != 0) idle_cv_.wait(mutex_);
}

void ExecutionService::shutdown() {
  // Raise the stop flag before draining: in-flight retry loops skip their
  // remaining backoff sleeps, and cooperative hangs (FaultInjector) throw
  // out via attempt_check_interrupt(), so the drain below is bounded by the
  // work itself, never by a retry schedule or an injected hang.
  stop_flag_.store(true, std::memory_order_relaxed);
  std::vector<BackendQueue*> queues;
  {
    MutexLock lock(mutex_);
    stopping_ = true;  // no new queues can appear past this point
    for (auto& [_, queue] : queues_) queues.push_back(queue.get());
  }
  // Idempotent: join() consumes joinability, so a destructor following an
  // explicit shutdown() finds nothing left to join.
  for (BackendQueue* queue : queues) {
    {
      MutexLock lock(queue->mutex);
      queue->stop = true;
    }
    queue->cv.notify_all();
  }
  for (BackendQueue* queue : queues)
    for (auto& worker : queue->workers)
      if (worker.joinable()) worker.join();
}

}  // namespace quml::svc

namespace quml::core {

// The historical blocking call, reimplemented as submit + wait on the
// process-wide service (declared in core/registry.hpp).  Failures propagate
// synchronously with their original exception types.  The job is forgotten
// once consumed so looping callers don't accumulate terminal records, and a
// call from inside a service worker (a backend running sub-jobs) executes
// inline — enqueueing onto the pool the worker itself is blocking would
// self-deadlock.
ExecutionResult submit(const JobBundle& bundle) {
  if (svc::detail::on_worker_thread()) {
    if (!bundle.context || bundle.context->exec.engine.empty())
      throw BackendError("bundle has no exec.engine to dispatch on");
    return BackendRegistry::instance().create(bundle.context->exec.engine)->run(bundle);
  }
  auto& service = svc::ExecutionService::shared();
  const svc::JobId id = service.submit(bundle);
  const svc::JobHandle job = service.handle(id);
  service.forget(id);
  return job.result();
}

}  // namespace quml::core

// Tests for the transpiler substrate: coupling maps, basis translation,
// routing, optimization passes — with semantic-preservation property tests
// against the state-vector simulator (circuits must stay equivalent up to
// global phase / final layout).

#include <gtest/gtest.h>

#include "sim/engine.hpp"
#include "transpile/transpiler.hpp"
#include "util/errors.hpp"
#include "util/rng.hpp"

namespace quml::transpile {
namespace {

using sim::Circuit;
using sim::Engine;
using sim::Gate;
using sim::Statevector;

constexpr double kPi = 3.14159265358979323846;

/// Random unitary test circuit over `n` qubits.
Circuit random_circuit(int n, int gates, std::uint64_t seed) {
  Rng rng(seed);
  Circuit c(n, 0);
  for (int i = 0; i < gates; ++i) {
    const int q = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    int p = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n)));
    if (p == q) p = (p + 1) % n;
    switch (rng.next_below(10)) {
      case 0: c.h(q); break;
      case 1: c.t(q); break;
      case 2: c.rz(rng.next_double() * 6 - 3, q); break;
      case 3: c.rx(rng.next_double() * 6 - 3, q); break;
      case 4: c.ry(rng.next_double() * 6 - 3, q); break;
      case 5: c.cx(q, p); break;
      case 6: c.cz(q, p); break;
      case 7: c.cp(rng.next_double() * 6 - 3, q, p); break;
      case 8: c.swap(q, p); break;
      case 9: c.rzz(rng.next_double() * 6 - 3, q, p); break;
    }
  }
  return c;
}

/// Applies `layout` (logical->physical) as a permutation so a routed circuit
/// can be compared against the original statevector.
Statevector embed_with_layout(const Circuit& original, const std::vector<int>& final_layout,
                              int physical_qubits) {
  // Simulate the original on physical qubits where logical q starts at
  // final_layout[q] -- i.e. undo the routing permutation at the end instead.
  Circuit embedded(physical_qubits, 0);
  std::vector<int> map(final_layout.begin(), final_layout.end());
  embedded.append(original, map);
  return Engine().run_statevector(embedded);
}

TEST(CouplingMap, Factories) {
  const CouplingMap linear = CouplingMap::linear(5);
  EXPECT_EQ(linear.num_qubits(), 5);
  EXPECT_TRUE(linear.connected(0, 1));
  EXPECT_FALSE(linear.connected(0, 2));
  EXPECT_EQ(linear.distance(0, 4), 4);

  const CouplingMap ring = CouplingMap::ring(4);
  EXPECT_TRUE(ring.connected(3, 0));
  EXPECT_EQ(ring.distance(0, 2), 2);

  const CouplingMap grid = CouplingMap::grid(2, 3);
  EXPECT_EQ(grid.num_qubits(), 6);
  EXPECT_TRUE(grid.connected(0, 3));
  EXPECT_EQ(grid.distance(0, 5), 3);

  const CouplingMap all = CouplingMap::all_to_all(8);
  EXPECT_TRUE(all.unconstrained());
  EXPECT_EQ(all.distance(0, 7), 1);
}

TEST(CouplingMap, Validation) {
  EXPECT_THROW(CouplingMap(2, {{0, 0}}), ValidationError);
  EXPECT_THROW(CouplingMap(2, {{-1, 0}}), ValidationError);
  const CouplingMap disconnected(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(disconnected.is_connected_graph());
  EXPECT_THROW(disconnected.distance(0, 3), ValidationError);
}

TEST(CouplingMap, DeduplicatesEdges) {
  const CouplingMap m(3, {{0, 1}, {1, 0}, {0, 1}, {1, 2}});
  EXPECT_EQ(m.edges().size(), 2u);
}

TEST(BasisSet, Construction) {
  const BasisSet basis({"sx", "rz", "cx"});
  EXPECT_TRUE(basis.contains(Gate::SX));
  EXPECT_TRUE(basis.contains(Gate::CX));
  EXPECT_FALSE(basis.contains(Gate::H));
  EXPECT_EQ(basis.entangler(), Gate::CX);
  EXPECT_THROW(BasisSet({"warp"}), ValidationError);
  const BasisSet cz_basis({"rz", "sx", "cz"});
  EXPECT_EQ(cz_basis.entangler(), Gate::CZ);
  EXPECT_THROW(BasisSet({"rz", "sx"}).entangler(), LoweringError);
}

TEST(Decompose2q, EliminatesWideGates) {
  Circuit c(3, 0);
  c.ccx(0, 1, 2);
  c.cswap(0, 1, 2);
  const Circuit out = decompose_to_2q(c);
  for (const auto& inst : out.instructions()) EXPECT_LE(inst.qubits.size(), 2u);
}

TEST(Decompose2q, CcxPreservesSemantics) {
  Circuit c(3, 0);
  c.h(0);
  c.h(1);
  c.ccx(0, 1, 2);
  const Statevector expected = Engine().run_statevector(c);
  const Statevector actual = Engine().run_statevector(decompose_to_2q(c));
  EXPECT_NEAR(expected.fidelity(actual), 1.0, 1e-9);
}

class BasisTranslationProperty
    : public ::testing::TestWithParam<std::tuple<int, const char*>> {};

TEST_P(BasisTranslationProperty, PreservesSemantics) {
  const auto [seed, basis_kind] = GetParam();
  const Circuit original = random_circuit(4, 30, static_cast<std::uint64_t>(seed));
  BasisSet basis;
  if (std::string(basis_kind) == "ibm") basis = BasisSet({"sx", "rz", "cx"});
  else if (std::string(basis_kind) == "rxrz") basis = BasisSet({"rx", "rz", "cx"});
  else if (std::string(basis_kind) == "cz") basis = BasisSet({"sx", "rz", "cz"});
  else basis = BasisSet({"u3", "cx"});
  const Circuit translated = translate_to_basis(original, basis);
  // Every emitted gate is inside the basis (or structural).
  for (const auto& inst : translated.instructions()) {
    if (inst.gate == Gate::Barrier || inst.gate == Gate::Measure) continue;
    EXPECT_TRUE(basis.contains(inst.gate)) << sim::gate_name(inst.gate);
  }
  const Statevector a = Engine().run_statevector(original);
  const Statevector b = Engine().run_statevector(translated);
  EXPECT_NEAR(a.fidelity(b), 1.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(
    RandomCircuits, BasisTranslationProperty,
    ::testing::Combine(::testing::Range(0, 8),
                       ::testing::Values("ibm", "rxrz", "cz", "u3")));

TEST(Routing, RespectsCouplingMap) {
  const Circuit c = random_circuit(5, 40, 3);
  const CouplingMap coupling = CouplingMap::linear(5);
  for (const auto method : {RoutingMethod::Greedy, RoutingMethod::Sabre}) {
    const RoutingResult routed = route(decompose_to_2q(c), coupling, method);
    for (const auto& inst : routed.circuit.instructions()) {
      if (inst.qubits.size() == 2) {
        EXPECT_TRUE(coupling.connected(inst.qubits[0], inst.qubits[1]))
            << inst.qubits[0] << "-" << inst.qubits[1];
      }
    }
  }
}

class RoutingSemanticsProperty : public ::testing::TestWithParam<int> {};

TEST_P(RoutingSemanticsProperty, PreservesStateUpToLayout) {
  const Circuit original = random_circuit(4, 25, static_cast<std::uint64_t>(GetParam()));
  const CouplingMap coupling = CouplingMap::linear(4);
  const RoutingResult routed = route(decompose_to_2q(original), coupling, RoutingMethod::Sabre);
  const Statevector routed_state = Engine().run_statevector(routed.circuit);
  const Statevector expected =
      embed_with_layout(decompose_to_2q(original), routed.final_layout, coupling.num_qubits());
  EXPECT_NEAR(routed_state.fidelity(expected), 1.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(RandomCircuits, RoutingSemanticsProperty, ::testing::Range(0, 10));

TEST(Routing, UnconstrainedIsIdentity) {
  const Circuit c = random_circuit(4, 10, 1);
  const RoutingResult routed = route(c, CouplingMap::all_to_all(4));
  EXPECT_EQ(routed.swaps_inserted, 0);
  EXPECT_EQ(routed.circuit.instructions().size(), c.instructions().size());
}

TEST(Routing, ErrorsOnBadInput) {
  Circuit wide(3, 0);
  wide.ccx(0, 1, 2);
  EXPECT_THROW(route(wide, CouplingMap::linear(3)), LoweringError);
  Circuit c(5, 0);
  c.cx(0, 4);
  EXPECT_THROW(route(c, CouplingMap::linear(3)), LoweringError);  // too few device qubits
  EXPECT_THROW(route(c, CouplingMap(5, {{0, 1}, {2, 3}})), LoweringError);  // disconnected
}

TEST(Routing, MeasurementsFollowTheirQubit) {
  Circuit c(3, 3);
  c.x(0);
  c.cx(0, 2);  // forces routing on a linear map
  c.measure_all();
  const TranspileOptions opts{BasisSet{}, CouplingMap::linear(3), 0, RoutingMethod::Sabre};
  const TranspileResult result = transpile(c, opts);
  // Counts must be unaffected by routing: qubit 0 is |1>, qubit 2 flips to |1>.
  const auto counts = Engine().run_counts(result.circuit, 100, 2);
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts.begin()->first, "101");
}

TEST(Passes, CancelInversePairs) {
  Circuit c(2, 0);
  c.h(0);
  c.h(0);
  c.cx(0, 1);
  c.cx(0, 1);
  c.s(1);
  c.sdg(1);
  const Circuit out = cancel_and_merge(c);
  EXPECT_EQ(out.size(), 0u);
}

TEST(Passes, CancellationCascades) {
  Circuit c(1, 0);
  c.h(0);
  c.x(0);
  c.x(0);
  c.h(0);
  EXPECT_EQ(cancel_and_merge(c).size(), 0u);
}

TEST(Passes, MergeRotations) {
  Circuit c(1, 0);
  c.rz(0.3, 0);
  c.rz(0.4, 0);
  const Circuit out = cancel_and_merge(c);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_DOUBLE_EQ(out.instructions()[0].params[0], 0.7);
}

TEST(Passes, MergedRotationsVanishWhenTrivial) {
  Circuit c(1, 0);
  c.rz(1.1, 0);
  c.rz(-1.1, 0);
  EXPECT_EQ(cancel_and_merge(c).size(), 0u);
  Circuit p(2, 0);
  p.cp(kPi, 0, 1);
  p.cp(kPi, 1, 0);  // cp is symmetric; merges to cp(2 pi) == identity
  EXPECT_EQ(cancel_and_merge(p).size(), 0u);
}

TEST(Passes, CrzIsNotSymmetricAndKeeps2PiPeriodRule) {
  Circuit c(2, 0);
  c.crz(kPi, 0, 1);
  c.crz(kPi, 1, 0);  // different operand order: must NOT merge
  EXPECT_EQ(cancel_and_merge(c).size(), 2u);
  Circuit d(2, 0);
  d.crz(2 * kPi, 0, 1);  // CRZ(2 pi) = controlled-(-I): NOT trivial
  d.crz(0.0, 0, 1);
  EXPECT_EQ(cancel_and_merge(d).size(), 1u);
}

TEST(Passes, InterveningGateBlocksCancellation) {
  Circuit c(2, 0);
  c.h(0);
  c.cx(0, 1);
  c.h(0);
  EXPECT_EQ(cancel_and_merge(c).size(), 3u);
}

TEST(Passes, BarrierBlocksOptimization) {
  Circuit c(1, 0);
  c.h(0);
  c.barrier();
  c.h(0);
  const Circuit out = cancel_and_merge(c);
  EXPECT_EQ(out.size(), 2u);  // barrier excluded from size(), both h remain
}

TEST(Passes, Fuse1qRunsShrinksCircuit) {
  Circuit c(1, 0);
  for (int i = 0; i < 10; ++i) {
    c.h(0);
    c.t(0);
    c.rz(0.1, 0);
  }
  const BasisSet basis({"sx", "rz", "cx"});
  const Circuit fused = fuse_1q_runs(c, basis);
  EXPECT_LE(fused.size(), 5u);
  const Statevector a = Engine().run_statevector(c);
  const Statevector b = Engine().run_statevector(fused);
  EXPECT_NEAR(a.fidelity(b), 1.0, 1e-9);
}

class OptimizationLevelProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(OptimizationLevelProperty, PreservesSemanticsAndNeverGrows) {
  const auto [seed, level] = GetParam();
  const Circuit original = random_circuit(4, 40, static_cast<std::uint64_t>(seed) + 100);
  const BasisSet basis({"sx", "rz", "cx"});
  const Circuit translated = translate_to_basis(original, basis);
  const Circuit optimized = optimize(translated, basis, level);
  EXPECT_LE(optimized.size(), translated.size());
  const Statevector a = Engine().run_statevector(translated);
  const Statevector b = Engine().run_statevector(optimized);
  EXPECT_NEAR(a.fidelity(b), 1.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(SeedsAndLevels, OptimizationLevelProperty,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Values(0, 1, 2, 3)));

TEST(Transpile, MetricsPopulated) {
  const Circuit c = random_circuit(4, 30, 9);
  TranspileOptions opts;
  opts.basis = BasisSet({"sx", "rz", "cx"});
  opts.coupling = CouplingMap::linear(4);
  opts.optimization_level = 2;
  const TranspileResult result = transpile(c, opts);
  EXPECT_GT(result.depth_before, 0);
  EXPECT_GT(result.depth_after, 0);
  EXPECT_GE(result.twoq_after, result.twoq_before);  // routing adds swaps
  EXPECT_EQ(result.initial_layout.size(), 4u);
  EXPECT_EQ(result.final_layout.size(), 4u);
}

TEST(Transpile, LinearCouplingCostsMoreThanAllToAll) {
  // EXP-CTX acceptance shape: constraining connectivity strictly increases
  // two-qubit counts for long-range circuits.
  Circuit c(6, 0);
  for (int i = 0; i < 6; ++i)
    for (int j = i + 1; j < 6; ++j) c.cx(i, j);
  TranspileOptions all;
  all.basis = BasisSet({"sx", "rz", "cx"});
  TranspileOptions linear = all;
  linear.coupling = CouplingMap::linear(6);
  const auto r_all = transpile(c, all);
  const auto r_linear = transpile(c, linear);
  EXPECT_GT(r_linear.twoq_after, r_all.twoq_after);
  EXPECT_GT(r_linear.swaps_inserted, 0);
}

TEST(Transpile, InvalidLevelRejected) {
  TranspileOptions opts;
  opts.optimization_level = 4;
  EXPECT_THROW(transpile(Circuit(1, 0), opts), ValidationError);
}

}  // namespace
}  // namespace quml::transpile

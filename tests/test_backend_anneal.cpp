// End-to-end tests of the anneal backend (paper Fig. 3 path) and the
// headline portability property: the same typed Max-Cut problem realized on
// both backends by swapping only the operator formulation and the context.

#include <gtest/gtest.h>

#include "algolib/ising.hpp"
#include "algolib/qaoa.hpp"
#include "backend/register_backends.hpp"
#include "core/registry.hpp"
#include "util/errors.hpp"

namespace quml {
namespace {

using algolib::Graph;
using core::Context;
using core::JobBundle;
using core::OperatorSequence;
using core::RegisterSet;

class AnnealBackendTest : public ::testing::Test {
 protected:
  void SetUp() override { backend::register_builtin_backends(); }

  static Context anneal_ctx(std::int64_t reads = 1000, std::uint64_t seed = 42) {
    Context ctx;
    ctx.exec.engine = "anneal.simulated_annealer";
    ctx.exec.seed = seed;
    core::AnnealPolicy policy;
    policy.num_reads = reads;
    policy.num_sweeps = 200;
    ctx.anneal = policy;
    return ctx;
  }

  static JobBundle maxcut_bundle(const Graph& graph, Context ctx) {
    const core::QuantumDataType reg =
        algolib::make_ising_register("ising_vars", static_cast<unsigned>(graph.n));
    RegisterSet regs;
    regs.add(reg);
    OperatorSequence seq;
    seq.ops.push_back(algolib::maxcut_ising_descriptor(reg, graph));
    return JobBundle::package(std::move(regs), std::move(seq), std::move(ctx));
  }
};

TEST_F(AnnealBackendTest, MaxCutRing4FindsOptimalStrings) {
  // EXP-F3: the annealer path returns 1010 and 0101 (cut = 4) as in §5.
  const Graph graph = Graph::cycle(4);
  const core::ExecutionResult result = core::submit(maxcut_bundle(graph, anneal_ctx()));
  EXPECT_GT(result.counts.probability("1010"), 0.2);
  EXPECT_GT(result.counts.probability("0101"), 0.2);
  const std::string top = result.counts.most_frequent();
  EXPECT_TRUE(top == "1010" || top == "0101");
  EXPECT_DOUBLE_EQ(result.metadata.get_double("ground_energy", 1.0), -4.0);
}

TEST_F(AnnealBackendTest, DecodedOutcomesCarryEnergies) {
  const core::ExecutionResult result =
      core::submit(maxcut_bundle(Graph::cycle(4), anneal_ctx(200)));
  bool found_ground = false;
  for (const auto& outcome : result.decoded) {
    if (outcome.bitstring == "1010" || outcome.bitstring == "0101") {
      EXPECT_DOUBLE_EQ(outcome.energy, -4.0);
      found_ground = true;
    }
  }
  EXPECT_TRUE(found_ground);
}

TEST_F(AnnealBackendTest, ReadsAndSeedComeFromContext) {
  const core::ExecutionResult result =
      core::submit(maxcut_bundle(Graph::cycle(4), anneal_ctx(333, 5)));
  EXPECT_EQ(result.counts.total(), 333);
  EXPECT_EQ(result.metadata.get_int("num_reads", 0), 333);
  // Deterministic under the same seed.
  const core::ExecutionResult again =
      core::submit(maxcut_bundle(Graph::cycle(4), anneal_ctx(333, 5)));
  EXPECT_EQ(result.counts.to_json(), again.counts.to_json());
}

TEST_F(AnnealBackendTest, PaperContextsWrapperWorksEndToEnd) {
  // The §5 annealer artifact shape: {"contexts": {"anneal": {"num_reads": ...}}}.
  const json::Value ctx_doc = json::parse(R"({
    "$schema": "ctx.schema.json",
    "exec": {"engine": "anneal.neal_simulator", "seed": 42},
    "contexts": {"anneal": {"num_reads": 500, "num_sweeps": 100}}
  })");
  const core::ExecutionResult result =
      core::submit(maxcut_bundle(Graph::cycle(4), Context::from_json(ctx_doc)));
  EXPECT_EQ(result.counts.total(), 500);
}

TEST_F(AnnealBackendTest, RejectsGatePathOperators) {
  // The formulation mismatch is now caught by the QA004 admission pass
  // synchronously at submit, before lowering (or a queue slot) is reached.
  const core::QuantumDataType reg = algolib::make_ising_register("s", 4);
  RegisterSet regs;
  regs.add(reg);
  const JobBundle bundle = JobBundle::package(
      std::move(regs), algolib::qaoa_sequence(reg, Graph::cycle(4), algolib::ring_p1_angles()),
      anneal_ctx(10));
  try {
    core::submit(bundle);
    FAIL() << "gate-path operators must not be admitted to the anneal engine";
  } catch (const ValidationError& e) {
    EXPECT_NE(std::string(e.what()).find("QA004"), std::string::npos) << e.what();
  }
}

TEST_F(AnnealBackendTest, RejectsWrongRegisterKind) {
  core::QuantumDataType reg;
  reg.id = "p";
  reg.width = 4;
  reg.encoding = core::EncodingKind::PhaseRegister;
  RegisterSet regs;
  regs.add(reg);
  OperatorSequence seq;
  core::OperatorDescriptor op;
  op.name = "ISING";
  op.rep_kind = core::rep::kIsingProblem;
  op.domain_qdt = "p";
  op.params.set("h", json::parse("[0,0,0,0]"));
  op.params.set("J", json::parse("[]"));
  seq.ops.push_back(op);
  const JobBundle bundle = JobBundle::package(std::move(regs), std::move(seq), anneal_ctx(10));
  EXPECT_THROW(core::submit(bundle), LoweringError);
}

TEST_F(AnnealBackendTest, WeightedGraphGroundState) {
  // A heavy edge forces the cut through it.
  Graph g;
  g.n = 3;
  g.edges = {{0, 1, 10.0}, {1, 2, 1.0}, {0, 2, 1.0}};
  const core::ExecutionResult result = core::submit(maxcut_bundle(g, anneal_ctx(300)));
  // Optimal cut separates 1 from {0,2}: strings 010 / 101, cut = 11.
  const std::string top = result.counts.most_frequent();
  EXPECT_TRUE(top == "010" || top == "101") << top;
  EXPECT_DOUBLE_EQ(algolib::cut_from_ising_energy(
                       g, result.metadata.get_double("ground_energy", 0.0)),
                   11.0);
}

// --- the paper's headline demonstration -------------------------------------

class PortabilityTest : public ::testing::Test {
 protected:
  void SetUp() override { backend::register_builtin_backends(); }
};

TEST_F(PortabilityTest, SameTypedProblemOnBothBackends) {
  // One shared QDT; gate path gets the QAOA formulation + gate context,
  // anneal path gets the ISING_PROBLEM formulation + anneal context.  Both
  // must find the optimal cuts 1010/0101 with cut value 4 (paper §5).
  const Graph graph = Graph::cycle(4);
  const core::QuantumDataType shared_qdt = algolib::make_ising_register("ising_vars", 4);
  const json::Value qdt_artifact = shared_qdt.to_json();  // the shared JSON artifact

  // Gate path.
  Context gate_ctx;
  gate_ctx.exec.engine = "gate.aer_simulator";  // paper Listing 4 engine name
  gate_ctx.exec.samples = 4096;
  gate_ctx.exec.seed = 42;
  gate_ctx.exec.target.coupling_map = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};  // 4-qubit ring
  gate_ctx.exec.target.basis_gates = {"sx", "rz", "cx"};
  core::RegisterSet gate_regs;
  gate_regs.add(core::QuantumDataType::from_json(qdt_artifact));
  const core::ExecutionResult gate_result = core::submit(core::JobBundle::package(
      std::move(gate_regs),
      algolib::qaoa_sequence(shared_qdt, graph, algolib::ring_p1_angles()), gate_ctx));

  // Anneal path: same QDT artifact, different operator formulation + context.
  Context anneal_ctx;
  anneal_ctx.exec.engine = "anneal.neal_simulator";
  anneal_ctx.exec.seed = 42;
  core::AnnealPolicy policy;
  policy.num_reads = 1000;
  anneal_ctx.anneal = policy;
  core::RegisterSet anneal_regs;
  anneal_regs.add(core::QuantumDataType::from_json(qdt_artifact));
  core::OperatorSequence ising_seq;
  ising_seq.ops.push_back(algolib::maxcut_ising_descriptor(shared_qdt, graph));
  const core::ExecutionResult anneal_result = core::submit(
      core::JobBundle::package(std::move(anneal_regs), std::move(ising_seq), anneal_ctx));

  // Both backends surface the same optimal assignments.
  for (const auto* result : {&gate_result, &anneal_result}) {
    const std::string top = result->counts.most_frequent();
    EXPECT_TRUE(top == "1010" || top == "0101") << top;
    EXPECT_DOUBLE_EQ(graph.cut_value_bits(top), 4.0);
  }
  // Gate path expected cut matches the paper's 3.0-3.2 window.
  const double expected_cut = gate_result.counts.expectation(
      [&](const std::string& bits) { return graph.cut_value_bits(bits); });
  EXPECT_GE(expected_cut, 2.9);
  EXPECT_LE(expected_cut, 3.3);
  // Annealer concentrates more mass on the optimum than QAOA p=1.
  const double anneal_mass =
      anneal_result.counts.probability("1010") + anneal_result.counts.probability("0101");
  const double gate_mass =
      gate_result.counts.probability("1010") + gate_result.counts.probability("0101");
  EXPECT_GT(anneal_mass, gate_mass);
}

TEST_F(PortabilityTest, IntentArtifactsAreContextInvariant) {
  // Serializing the operator stack is byte-identical regardless of which
  // context will execute it (the paper's "without modifying the intent
  // artifacts" claim).
  const Graph graph = Graph::cycle(4);
  const core::QuantumDataType reg = algolib::make_ising_register("ising_vars", 4);
  const core::OperatorSequence seq =
      algolib::qaoa_sequence(reg, graph, algolib::ring_p1_angles());
  const json::Value once = seq.to_json();
  // "Execute" with two different contexts; the artifacts don't change.
  Context a;
  a.exec.engine = "gate.statevector_simulator";
  Context b;
  b.exec.engine = "gate.statevector_simulator";
  b.exec.target.basis_gates = {"sx", "rz", "cx"};
  b.exec.target.coupling_map = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  core::RegisterSet regs_a, regs_b;
  regs_a.add(reg);
  regs_b.add(reg);
  (void)core::submit(core::JobBundle::package(std::move(regs_a), seq, a));
  (void)core::submit(core::JobBundle::package(std::move(regs_b), seq, b));
  EXPECT_EQ(seq.to_json(), once);
}

}  // namespace
}  // namespace quml

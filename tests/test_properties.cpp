// Randomized differential property suites over the whole execution stack
// (ISSUE 5 satellite): fused vs unfused statevectors, transpiled vs logical
// unitary action, sweep-bound vs hand-substituted circuits, and QASM3
// emit -> parse round trips — each across >= 32 seeds, everything to 1e-12.

#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <vector>

#include "random_circuit.hpp"
#include "sim/engine.hpp"
#include "sim/fusion.hpp"
#include "sim/qasm.hpp"
#include "sim/statevector.hpp"
#include "sim/sweep.hpp"
#include "transpile/transpiler.hpp"
#include "util/errors.hpp"
#include "util/rng.hpp"

namespace quml::sim {
namespace {

// The circuit generator lives in random_circuit.hpp, shared with the
// analyzer's clean-program suite (test_analysis.cpp).
using testgen::GenOptions;
using testgen::random_binding;
using testgen::random_circuit;

constexpr double kTol = 1e-12;

double max_amp_diff(const Statevector& a, const Statevector& b) {
  double md = 0.0;
  for (std::uint64_t i = 0; i < a.dim(); ++i)
    md = std::max(md, std::abs(a.amplitude(i) - b.amplitude(i)));
  return md;
}

class PropertySeeds : public ::testing::TestWithParam<std::uint64_t> {};

// --- 1. fused vs unfused ------------------------------------------------------

TEST_P(PropertySeeds, FusedMatchesGateByGate) {
  const std::uint64_t seed = GetParam();
  const Circuit c = random_circuit(seed, 5, 48);
  Statevector unfused(c.num_qubits());
  for (const auto& inst : c.instructions())
    if (inst.gate != Gate::Barrier) unfused.apply(inst);
  Statevector fused(c.num_qubits());
  apply_fused(fused, fuse_unitaries(c));
  EXPECT_LT(max_amp_diff(fused, unfused), kTol) << "seed " << seed;
}

// --- 2. transpiled vs logical -------------------------------------------------

TEST_P(PropertySeeds, TranspiledPreservesUnitaryAction) {
  const std::uint64_t seed = GetParam();
  const Circuit c = random_circuit(seed, 5, 40);
  const Statevector want = Engine().run_statevector(c);

  static const std::vector<std::vector<std::string>> kBases = {
      {},                          // unconstrained
      {"rz", "sx", "cx"},          // IBM-style
      {"rz", "rx", "cz"},
      {"u3", "cp", "cx", "swap"},
  };
  transpile::TranspileOptions topts;
  topts.basis = transpile::BasisSet(kBases[seed % kBases.size()]);
  topts.optimization_level = static_cast<int>(seed % 4);
  if (seed % 2 == 0) {
    // A line coupling forces real routing.
    std::vector<std::pair<int, int>> line;
    for (int q = 0; q + 1 < c.num_qubits(); ++q) line.emplace_back(q, q + 1);
    topts.coupling = transpile::CouplingMap(c.num_qubits(), line);
  }
  const transpile::TranspileResult result = transpile::transpile(c, topts);

  // Transpilation may permute qubits (routing): undo the final layout by
  // checking fidelity of the decoded distribution is too weak; instead map
  // the transpiled state back through the layout and compare up to a global
  // phase via fidelity.
  const Statevector got = Engine().run_statevector(result.circuit);
  // Permute: logical qubit q lives at physical final_layout[q].
  Statevector mapped(c.num_qubits());
  std::vector<c64> amps(static_cast<std::size_t>(1) << c.num_qubits());
  for (std::uint64_t phys = 0; phys < got.dim(); ++phys) {
    std::uint64_t logical = 0;
    for (int q = 0; q < c.num_qubits(); ++q) {
      const int p = result.final_layout[static_cast<std::size_t>(q)];
      logical |= ((phys >> p) & 1ull) << q;
    }
    amps[logical] = got.amplitude(phys);
  }
  // fidelity |<want|mapped>| must be 1 (equality up to global phase).
  std::complex<double> inner = 0.0;
  for (std::uint64_t i = 0; i < want.dim(); ++i)
    inner += std::conj(want.amplitude(i)) * amps[i];
  EXPECT_NEAR(std::abs(inner), 1.0, kTol) << "seed " << seed;
}

// --- 3. sweep-bound vs hand-substituted ---------------------------------------

TEST_P(PropertySeeds, SweepPlanMatchesHandSubstitution) {
  const std::uint64_t seed = GetParam();
  GenOptions opt;
  opt.num_params = 3;
  const Circuit c = random_circuit(seed, 5, 40, opt);
  SweepPlan plan(c);
  ASSERT_EQ(plan.num_parameters(), c.num_parameters());
  SweepPlan::Session session(plan);
  // Several bindings through ONE session: exercises re-binding, rebind
  // elision, and the mid-sweep checkpoint against fresh hand substitution.
  for (int b = 0; b < 4; ++b) {
    std::vector<double> values = random_binding(seed * 131 + static_cast<std::uint64_t>(b), 3);
    if (b == 2 && plan.num_parameters() > 0) values[0] = random_binding(seed * 131 + 1, 3)[0];
    const Statevector got = session.run_statevector(values);
    const Statevector want = Engine().run_statevector(c.bind(values));
    EXPECT_LT(max_amp_diff(got, want), kTol) << "seed " << seed << " binding " << b;
  }
}

TEST_P(PropertySeeds, SweepCountsDeterministicAcrossSessions) {
  const std::uint64_t seed = GetParam();
  GenOptions opt;
  opt.num_params = 2;
  opt.measures = true;
  const Circuit c = random_circuit(seed, 4, 24, opt);
  SweepPlan plan(c);
  SweepPlan::Session a(plan), b(plan);
  const std::vector<double> v1 = random_binding(seed + 17, 2);
  const std::vector<double> v2 = random_binding(seed + 18, 2);
  // a runs v1 then v2; b runs v2 directly — the checkpoint/warm-buffer state
  // of a session must never leak into results.
  a.run_counts(v1, 128, 9);
  EXPECT_EQ(a.run_counts(v2, 128, 9), b.run_counts(v2, 128, 9)) << "seed " << seed;
}

// --- 4. QASM3 emit -> parse round trip ----------------------------------------

TEST_P(PropertySeeds, QasmRoundTripsInstructionStream) {
  const std::uint64_t seed = GetParam();
  GenOptions opt;
  opt.num_params = 2;
  opt.measures = (seed % 2) == 0;
  Circuit c = random_circuit(seed, 4, 32, opt);
  if (seed % 3 == 0) c.sxdg(0);  // exercise the local gate definition
  if (seed % 5 == 0) c.reset(1);
  const std::string text = to_qasm3(c, "property fuzz");
  const Circuit back = from_qasm3(text);
  ASSERT_EQ(back.num_qubits(), c.num_qubits()) << text;
  ASSERT_EQ(back.num_clbits(), c.num_clbits()) << text;
  EXPECT_EQ(back.num_parameters(), c.num_parameters()) << text;
  ASSERT_EQ(back.instructions().size(), c.instructions().size()) << text;
  for (std::size_t i = 0; i < c.instructions().size(); ++i)
    EXPECT_EQ(back.instructions()[i], c.instructions()[i])
        << "seed " << seed << " instruction " << i << "\n" << text;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySeeds,
                         ::testing::Range<std::uint64_t>(0, 32));

// --- directed edge cases the fuzzers rarely hit -------------------------------

TEST(PropertyEdge, SweepPlanKeepsSelfCancellingSymbolicRun) {
  // rz(p0); rz(-p0) composes to the identity at EVERY binding the two slots
  // agree on — the plan must keep the block (keep_identity_blocks) so the
  // cancellation holds exactly rather than by luck of the reference binding.
  Circuit c(1, 0);
  c.rz(Param::symbol(0), 0);
  c.h(0);
  c.h(0);
  c.rz(-Param::symbol(0), 0);
  SweepPlan plan(c);
  SweepPlan::Session session(plan);
  for (const double v : {0.0, 1.25, -3.5}) {
    const Statevector got = session.run_statevector(std::vector<double>{v});
    EXPECT_NEAR(std::abs(got.amplitude(0)), 1.0, kTol);
  }
}

TEST(PropertyEdge, SweepPlanZeroAngleBindingIsNotDropped) {
  // Binding a symbol to 0 must still apply the (identity) rotation exactly:
  // the plan was built at a generic reference angle, so a zero binding
  // exercises rebinding into an identity table.
  Circuit c(2, 0);
  c.h(0);
  c.rzz(Param::symbol(0), 0, 1);
  c.rx(Param::symbol(1), 1);
  SweepPlan plan(c);
  SweepPlan::Session session(plan);
  const Statevector got = session.run_statevector(std::vector<double>{0.0, 0.0});
  const Statevector want = Engine().run_statevector(c.bind(std::vector<double>{0.0, 0.0}));
  EXPECT_LT(max_amp_diff(got, want), kTol);
}

TEST(PropertyEdge, TranspileNeverMergesAcrossDistinctSymbols) {
  // rz(p0); rz(p1) on one wire must stay two rotations (merging would add
  // the symbols); binding afterwards must equal hand substitution.
  Circuit c(1, 0);
  c.rz(Param::symbol(0), 0);
  c.rz(Param::symbol(1), 0);
  transpile::TranspileOptions topts;
  topts.optimization_level = 3;
  const transpile::TranspileResult result = transpile::transpile(c, topts);
  const std::vector<double> values{0.7, -0.3};
  const Statevector got = Engine().run_statevector(result.circuit.bind(values));
  const Statevector want = Engine().run_statevector(c.bind(values));
  EXPECT_LT(max_amp_diff(got, want), kTol);
}

}  // namespace
}  // namespace quml::sim

// Cross-engine equivalence and routing suite: the MPS simulation state run
// through the *same* public surfaces as the dense statevector — sim::Engine,
// GateBackend, svc::ExecutionService, and submit_sweep's bind-per-binding
// fallback — must agree with it wherever both representations are exact.
// This file also pins the ISSUE acceptance scenarios: a 50+ qubit
// low-entanglement circuit routes to "gate.mps_simulator" under
// engine="auto" and produces correct counts, a deep narrow circuit routes to
// the dense simulator, and over-width jobs are rejected *early* with an
// error naming the MPS alternative.  (The no-direct-Statevector source guard
// that used to live here is now tools/check_source_guards.py, run as the
// "static"-labelled ctest — see tests/CMakeLists.txt.)
//
// The whole binary additionally runs under the "perf-smoke" ctest label (see
// tests/CMakeLists.txt): the wide-GHZ and 20-qubit-QFT scenarios double as
// smoke checks that past-the-wall widths stay cheap.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "algolib/graph.hpp"
#include "algolib/ising.hpp"
#include "algolib/qaoa.hpp"
#include "algolib/qft.hpp"
#include "algolib/arithmetic.hpp"
#include "algolib/stateprep.hpp"
#include "backend/register_backends.hpp"
#include "core/params.hpp"
#include "core/registry.hpp"
#include "sim/engine.hpp"
#include "sim/mps.hpp"
#include "sim/statevector.hpp"
#include "svc/execution_service.hpp"
#include "util/errors.hpp"
#include "util/rng.hpp"

namespace quml {
namespace {

using sim::Circuit;
using sim::Gate;

constexpr double kAmpTol = 1e-10;

/// Exact MPS configuration: bond cap far above anything these widths can
/// reach, zero cutoff, so MPS results must match the dense statevector to
/// numerical precision (not merely approximately).
sim::StateConfig exact_mps_config() {
  sim::StateConfig config;
  config.representation = sim::StateRep::Mps;
  config.mps.max_bond_dim = 4096;
  config.mps.truncation_cutoff = 0.0;
  return config;
}

/// Random circuit over the 1q/2q vocabulary with unrestricted operand pairs,
/// so swap routing and descending operand orders are exercised through the
/// cross-engine comparison too.
Circuit random_circuit(std::uint64_t seed, int n, int gates, int clbits = 0) {
  Rng rng(seed);
  Circuit c(n, clbits);
  const auto wire = [&] { return static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n))); };
  const auto other = [&](int q) {
    return (q + 1 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n - 1)))) % n;
  };
  const auto angle = [&] { return rng.next_double() * 6.0 - 3.0; };
  for (int i = 0; i < gates; ++i) {
    const int q = wire();
    switch (rng.next_below(8)) {
      case 0: c.h(q); break;
      case 1: c.rx(angle(), q); break;
      case 2: c.u3(angle(), angle(), angle(), q); break;
      case 3: c.t(q); break;
      case 4: c.cx(q, other(q)); break;
      case 5: c.cz(q, other(q)); break;
      case 6: c.rzz(angle(), q, other(q)); break;
      case 7: c.cp(angle(), q, other(q)); break;
    }
  }
  return c;
}

/// Total-variation distance between two count maps (normalized per map).
double tvd(const std::map<std::string, std::int64_t>& a,
           const std::map<std::string, std::int64_t>& b) {
  double ta = 0.0, tb = 0.0;
  for (const auto& [key, value] : a) ta += static_cast<double>(value);
  for (const auto& [key, value] : b) tb += static_cast<double>(value);
  std::set<std::string> keys;
  for (const auto& [key, value] : a) keys.insert(key);
  for (const auto& [key, value] : b) keys.insert(key);
  double d = 0.0;
  for (const auto& key : keys) {
    const auto ia = a.find(key), ib = b.find(key);
    const double pa = ia == a.end() ? 0.0 : static_cast<double>(ia->second) / ta;
    const double pb = ib == b.end() ? 0.0 : static_cast<double>(ib->second) / tb;
    d += std::abs(pa - pb);
  }
  return 0.5 * d;
}

// --- bundle builders ---------------------------------------------------------

core::JobBundle ghz_job(unsigned width, std::uint64_t seed, const std::string& engine,
                        std::int64_t samples = 256) {
  const core::QuantumDataType reg = algolib::make_uint_register("g", width);
  core::RegisterSet regs;
  regs.add(reg);
  core::OperatorSequence seq;
  seq.ops.push_back(algolib::ghz_prep_descriptor(reg));
  seq.ops.push_back(algolib::measurement_descriptor(reg));
  core::Context ctx;
  ctx.exec.engine = engine;
  ctx.exec.samples = samples;
  ctx.exec.seed = seed;
  return core::JobBundle::package(std::move(regs), std::move(seq), ctx,
                                  "xghz" + std::to_string(width) + "-s" + std::to_string(seed));
}

core::JobBundle qft_job(unsigned width, std::uint64_t seed, const std::string& engine,
                        std::int64_t samples = 16) {
  const auto reg = algolib::make_phase_register("p", width);
  core::RegisterSet regs;
  regs.add(reg);
  core::OperatorSequence seq;
  seq.ops.push_back(algolib::qft_descriptor(reg, {}));
  seq.ops.push_back(algolib::measurement_descriptor(reg));
  core::Context ctx;
  ctx.exec.engine = engine;
  ctx.exec.samples = samples;
  ctx.exec.seed = seed;
  return core::JobBundle::package(std::move(regs), std::move(seq), ctx,
                                  "xqft" + std::to_string(width) + "-s" + std::to_string(seed));
}

/// Symbolic QAOA bundle ($gamma/$beta parameter references), same shape as
/// the sweep suite's — the MPS engine must run it through submit_sweep's
/// bind-per-binding fallback since it cannot cache a statevector plan.
core::JobBundle qaoa_sweep_bundle(int n, std::int64_t samples, std::uint64_t seed,
                                  const std::string& engine) {
  const algolib::Graph graph = algolib::Graph::cycle(n);
  const auto reg = algolib::make_ising_register("cut", static_cast<unsigned>(n));
  core::OperatorSequence seq;
  seq.ops.push_back(algolib::prep_uniform_descriptor(reg));
  core::OperatorDescriptor cost = algolib::cost_phase_descriptor(reg, graph, 0.0);
  cost.params.set("gamma", json::Value("$gamma"));
  core::OperatorDescriptor mixer = algolib::mixer_descriptor(reg, 0.0);
  mixer.params.set("beta", json::Value("$beta"));
  seq.ops.push_back(std::move(cost));
  seq.ops.push_back(std::move(mixer));
  seq.ops.push_back(algolib::measurement_descriptor(reg));
  core::Context ctx;
  ctx.exec.engine = engine;
  ctx.exec.samples = samples;
  ctx.exec.seed = seed;
  return core::JobBundle::package(core::RegisterSet(std::vector<core::QuantumDataType>{reg}),
                                  std::move(seq), ctx, "xsweep-" + engine, {"gamma", "beta"});
}

// --- engine-level equivalence ------------------------------------------------

TEST(CrossEngine, AmplitudesMatchAcrossThirtyTwoSeeds) {
  const sim::Engine mps_engine(exact_mps_config());
  const sim::Engine dense_engine;
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    const Circuit c = random_circuit(seed, 10, 36);
    const auto mps = mps_engine.run_state(c);
    const sim::Statevector sv = dense_engine.run_statevector(c);
    double md = 0.0;
    for (std::uint64_t i = 0; i < sv.dim(); ++i)
      md = std::max(md, std::abs(mps->amplitude(i) - sv.amplitude(i)));
    EXPECT_LT(md, kAmpTol) << "seed " << seed;
  }
}

TEST(CrossEngine, DeterministicCircuitCountsMatchExactly) {
  // A computational-basis circuit has a single outcome: both engines must
  // produce the identical count map regardless of their sampler internals.
  Circuit c(8, 8);
  for (const int q : {0, 3, 4, 7}) c.x(q);
  c.cx(0, 5);  // |1> control: flips q5 deterministically
  for (int q = 0; q < 8; ++q) c.measure(q, q);
  const auto dense = sim::Engine().run_counts(c, 500, 42);
  const auto mps = sim::Engine(exact_mps_config()).run_counts(c, 500, 42);
  EXPECT_EQ(dense, mps);
  ASSERT_EQ(mps.size(), 1u);
  EXPECT_EQ(mps.begin()->second, 500);
}

TEST(CrossEngine, SampledCountsAgreeWithinTvd) {
  // The two samplers consume randomness differently (alias table vs chain
  // contraction), so counts cannot match bit-for-bit — but they draw from
  // the same distribution, so the total-variation distance between large
  // samples must be small.
  Circuit c = random_circuit(404, 6, 30, 6);
  for (int q = 0; q < 6; ++q) c.measure(q, q);
  std::map<std::string, std::int64_t> dense, mps;
  for (const auto& [key, value] : sim::Engine().run_counts(c, 8192, 7)) dense[key] = value;
  for (const auto& [key, value] : sim::Engine(exact_mps_config()).run_counts(c, 8192, 7))
    mps[key] = value;
  EXPECT_LT(tvd(dense, mps), 0.1);
}

// --- submit_sweep bind-per-binding fallback ----------------------------------

TEST(CrossEngine, SweepFallbackMatchesStatevectorSweep) {
  backend::register_builtin_backends();
  std::vector<std::vector<double>> grid;
  for (int i = 0; i < 2; ++i)
    for (int j = 0; j < 2; ++j) grid.push_back({0.3 + 0.4 * i, 0.2 + 0.3 * j});

  svc::ExecutionService service;
  const svc::SweepHandle mps_sweep =
      service.submit_sweep(qaoa_sweep_bundle(5, 4096, 11, "gate.mps_simulator"), grid);
  // No statevector realization exists for the MPS engine: the sweep must
  // take the bind-per-binding fallback, not a cached plan.
  EXPECT_FALSE(mps_sweep.plan_cached());
  const svc::SweepHandle dense_sweep =
      service.submit_sweep(qaoa_sweep_bundle(5, 4096, 11, "gate.statevector_simulator"), grid);
  EXPECT_TRUE(dense_sweep.plan_cached());
  mps_sweep.wait();
  dense_sweep.wait();

  for (std::size_t i = 0; i < grid.size(); ++i) {
    ASSERT_EQ(mps_sweep.status(i), svc::JobStatus::Done) << mps_sweep.error(i);
    // Distributionally identical to the cached statevector plan...
    EXPECT_LT(tvd(mps_sweep.result(i).counts.map(), dense_sweep.result(i).counts.map()), 0.15)
        << "binding " << i;
  }

  // ...and bit-identical to an independent submit of the hand-bound bundle
  // on the same engine with the derived per-binding seed.
  const core::JobBundle bundle = qaoa_sweep_bundle(5, 4096, 11, "gate.mps_simulator");
  for (const std::size_t i : {std::size_t{0}, std::size_t{3}}) {
    core::JobBundle bound = core::bind_bundle(bundle, grid[i]);
    bound.context->exec.seed = core::sweep_seed(11, i);
    const core::ExecutionResult want = core::submit(bound);
    EXPECT_EQ(mps_sweep.result(i).counts.map(), want.counts.map()) << "binding " << i;
    EXPECT_EQ(want.metadata.get_string("representation", ""), "mps");
  }
}

// --- acceptance: auto-routing past the wall ----------------------------------

TEST(CrossEngine, WideGhzRoutesToMpsUnderAutoWithCorrectCounts) {
  backend::register_builtin_backends();
  svc::ExecutionService service;
  // 52 qubits: far past any dense statevector (hard wall at 30), trivially
  // cheap on MPS (GHZ bond dimension 2).
  const svc::JobId id = service.submit(ghz_job(52, 9, "auto", 256));
  EXPECT_EQ(service.handle(id).engine(), "gate.mps_simulator");
  const auto decision = service.handle(id).decision();
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->backend, "gate.mps_simulator");
  const core::ExecutionResult result = service.handle(id).result();

  ASSERT_EQ(result.counts.map().size(), 2u);
  const std::string zeros(52, '0'), ones(52, '1');
  EXPECT_GE(result.counts.map().at(zeros), 64);
  EXPECT_GE(result.counts.map().at(ones), 64);
  EXPECT_EQ(result.counts.total(), 256);
  EXPECT_EQ(result.metadata.get_string("representation", ""), "mps");
}

TEST(CrossEngine, DeepNarrowCircuitRoutesToStatevectorUnderAuto) {
  backend::register_builtin_backends();
  svc::ExecutionService service;
  // A 20-qubit QFT carries ~190 two-qubit gates (entanglement score ~9.5):
  // the MPS estimate pays the chi^3 time multiplier and a fidelity penalty
  // for the bond it cannot afford, so the dense simulator must win.
  const svc::JobId id = service.submit(qft_job(20, 3, "auto", 16));
  EXPECT_EQ(service.handle(id).engine(), "gate.statevector_simulator");
  const auto decision = service.handle(id).decision();
  ASSERT_TRUE(decision.has_value());
  // The decision record carries the entanglement input the heuristic used.
  bool saw_mps_estimate = false;
  for (const auto& [name, est] : decision->considered)
    if (name == "gate.mps_simulator" && est.feasible) {
      saw_mps_estimate = true;
      EXPECT_GT(est.entanglement_score, 8.0);
    }
  EXPECT_TRUE(saw_mps_estimate);
  EXPECT_EQ(service.handle(id).result().counts.total(), 16);
}

// --- early capacity rejection ------------------------------------------------

TEST(CrossEngine, ServiceAdmissionRejectsOverWidthJobNamingAlternative) {
  backend::register_builtin_backends();
  svc::ExecutionService service;
  try {
    service.submit(ghz_job(40, 1, "gate.statevector_simulator"));
    FAIL() << "admission should reject a 40-qubit job on the dense engine";
  } catch (const ValidationError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("caps at"), std::string::npos) << message;
    EXPECT_NE(message.find("gate.mps_simulator"), std::string::npos) << message;
  }
}

TEST(CrossEngine, BackendRejectsOverWidthJobBeforeAllocating) {
  backend::register_builtin_backends();
  try {
    core::submit(ghz_job(40, 1, "gate.statevector_simulator"));
    FAIL() << "GateBackend should reject a 40-qubit dense job at admission";
  } catch (const ValidationError& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("40 qubits"), std::string::npos) << message;
    EXPECT_NE(message.find("gate.mps_simulator"), std::string::npos) << message;
  }
  // The same width sails through when addressed to the MPS engine directly.
  const core::ExecutionResult result = core::submit(ghz_job(40, 1, "gate.mps_simulator", 64));
  EXPECT_EQ(result.counts.map().size(), 2u);
}

TEST(CrossEngine, NoiseTrajectoriesStayOnDenseEngine) {
  backend::register_builtin_backends();
  core::JobBundle bundle = ghz_job(6, 1, "gate.mps_simulator");
  bundle.context->noise = core::NoisePolicy{};
  bundle.context->noise->enabled = true;
  bundle.context->noise->depolarizing_1q = 0.01;
  try {
    core::submit(bundle);
    FAIL() << "noise trajectories are dense-only";
  } catch (const BackendError& e) {
    EXPECT_NE(std::string(e.what()).find("gate.statevector_simulator"), std::string::npos)
        << e.what();
  }
}

// The former representation-agnostic-sources grep test
// (EngineAndGateBackendConstructNoStatevectorDirectly) was promoted to
// tools/check_source_guards.py so it runs without GTest and also enforces
// the no-raw-std::mutex rule; ctest runs it under the "static" label.

}  // namespace
}  // namespace quml

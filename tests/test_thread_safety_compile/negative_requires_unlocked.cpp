// Thread-safety analysis negative test: calling a QUML_REQUIRES(mutex)
// method without holding the mutex.  Under Clang with -Werror=thread-safety
// this translation unit MUST FAIL to compile ("calling function
// 'bump_locked' requires holding mutex 'mutex_' exclusively"); the
// CMakeLists in this directory asserts exactly that.

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void racy_increment() { bump_locked(); }  // BUG under analysis: no lock held

 private:
  void bump_locked() QUML_REQUIRES(mutex_) { ++value_; }

  quml::Mutex mutex_;
  int value_ QUML_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.racy_increment();
  return 0;
}

// Thread-safety analysis negative test: reading a QUML_GUARDED_BY field
// without holding its mutex.  Under Clang with -Werror=thread-safety this
// translation unit MUST FAIL to compile ("reading variable 'value_' requires
// holding mutex 'mutex_'"); the CMakeLists in this directory asserts exactly
// that, both with a configure-time try_compile and a CTest case.

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace {

class Counter {
 public:
  int racy_value() { return value_; }  // BUG under analysis: no lock held

 private:
  quml::Mutex mutex_;
  int value_ QUML_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  return counter.racy_value();
}

// Thread-safety analysis positive control: a correctly locked translation
// unit over the annotated primitives (util/sync.hpp).  This MUST compile
// under -Werror=thread-safety — if it does not, the negative tests in this
// directory prove nothing (a broken include path or flag would "fail" them
// too).  Mirrors the real idiom in svc::ExecutionService: guarded fields,
// a _locked() helper carrying QUML_REQUIRES, and an explicit CondVar wait
// loop inside the critical section.

#include "util/sync.hpp"
#include "util/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void increment() QUML_EXCLUDES(mutex_) {
    quml::MutexLock lock(mutex_);
    bump_locked();
    cv_.notify_all();
  }

  void wait_past(int threshold) QUML_EXCLUDES(mutex_) {
    quml::MutexLock lock(mutex_);
    while (value_ <= threshold) cv_.wait(mutex_);
  }

  int value() QUML_EXCLUDES(mutex_) {
    quml::MutexLock lock(mutex_);
    return value_;
  }

 private:
  void bump_locked() QUML_REQUIRES(mutex_) { ++value_; }

  quml::Mutex mutex_;
  quml::CondVar cv_;
  int value_ QUML_GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter counter;
  counter.increment();
  counter.wait_past(0);
  return counter.value() == 1 ? 0 : 1;
}

// Tests for the algorithmic libraries: graph workloads and exact Max-Cut,
// QFT/QAOA/Ising/arithmetic/state-prep/boolean/phase descriptor builders
// (pure constructors with cost hints and result schemas), and the
// variational optimizer.

#include <gtest/gtest.h>

#include <cmath>

#include "algolib/arithmetic.hpp"
#include "algolib/booleans.hpp"
#include "algolib/graph.hpp"
#include "algolib/ising.hpp"
#include "algolib/phase.hpp"
#include "algolib/qaoa.hpp"
#include "algolib/qft.hpp"
#include "algolib/stateprep.hpp"
#include "algolib/variational.hpp"
#include "util/errors.hpp"

namespace quml::algolib {
namespace {

constexpr double kPi = 3.14159265358979323846;

TEST(Graph, CycleStructure) {
  const Graph g = Graph::cycle(4);
  EXPECT_EQ(g.n, 4);
  EXPECT_EQ(g.edges.size(), 4u);
  EXPECT_DOUBLE_EQ(g.total_weight(), 4.0);
}

TEST(Graph, CutValues) {
  const Graph g = Graph::cycle(4);
  EXPECT_DOUBLE_EQ(g.cut_value(0b0101), 4.0);  // alternating partition
  EXPECT_DOUBLE_EQ(g.cut_value(0b1010), 4.0);
  EXPECT_DOUBLE_EQ(g.cut_value(0b0000), 0.0);
  EXPECT_DOUBLE_EQ(g.cut_value(0b0001), 2.0);
  EXPECT_DOUBLE_EQ(g.cut_value(0b0011), 2.0);
}

TEST(Graph, CutValueBitsMatchesMask) {
  const Graph g = Graph::cycle(4);
  // "1010" MSB-first = node3,node2,node1,node0 = 1,0,1,0 -> mask 0b1010.
  EXPECT_DOUBLE_EQ(g.cut_value_bits("1010"), g.cut_value(0b1010));
  EXPECT_THROW(g.cut_value_bits("101"), ValidationError);
}

TEST(Graph, ExactMaxCutRing4) {
  const auto [best, argmax] = Graph::cycle(4).max_cut_exact();
  EXPECT_DOUBLE_EQ(best, 4.0);
  ASSERT_EQ(argmax.size(), 2u);  // 0101 and 1010
  EXPECT_DOUBLE_EQ(Graph::cycle(4).cut_value(argmax[0]), 4.0);
}

TEST(Graph, ExactMaxCutOddRingIsFrustrated) {
  const auto [best, argmax] = Graph::cycle(5).max_cut_exact();
  EXPECT_DOUBLE_EQ(best, 4.0);  // can cut at most 4 of 5 edges
  EXPECT_GT(argmax.size(), 2u);
}

TEST(Graph, CompleteGraphMaxCut) {
  const auto [best, _] = Graph::complete(4).max_cut_exact();
  EXPECT_DOUBLE_EQ(best, 4.0);  // balanced bipartition cuts 2*2 edges
}

TEST(Graph, GridIsBipartiteSoFullCutAchievable) {
  const Graph g = Graph::grid(2, 3);
  const auto [best, _] = g.max_cut_exact();
  EXPECT_DOUBLE_EQ(best, g.total_weight());  // bipartite: all edges cuttable
}

TEST(Graph, RandomGnpReproducible) {
  const Graph a = Graph::random_gnp(8, 0.5, 11);
  const Graph b = Graph::random_gnp(8, 0.5, 11);
  ASSERT_EQ(a.edges.size(), b.edges.size());
  const Graph c = Graph::random_gnp(8, 0.5, 12);
  EXPECT_TRUE(a.edges.size() != c.edges.size() ||
              !std::equal(a.edges.begin(), a.edges.end(), c.edges.begin(),
                          [](const Edge& x, const Edge& y) {
                            return x.u == y.u && x.v == y.v;
                          }));
}

TEST(Graph, RandomCubicHasDegreeThree) {
  const Graph g = Graph::random_cubic(8, 5);
  std::vector<int> degree(8, 0);
  for (const auto& e : g.edges) {
    ++degree[static_cast<std::size_t>(e.u)];
    ++degree[static_cast<std::size_t>(e.v)];
  }
  for (const int d : degree) EXPECT_EQ(d, 3);
}

TEST(Graph, JsonRoundTrip) {
  const Graph g = Graph::cycle(5, 2.5);
  const Graph back = Graph::from_json(g.to_json());
  EXPECT_EQ(back.n, 5);
  ASSERT_EQ(back.edges.size(), 5u);
  EXPECT_DOUBLE_EQ(back.edges[0].w, 2.5);
}

TEST(QftBuilder, PhaseRegisterMatchesListing2) {
  const core::QuantumDataType reg = make_phase_register("reg_phase", 10);
  EXPECT_EQ(reg.width, 10u);
  EXPECT_EQ(reg.encoding, core::EncodingKind::PhaseRegister);
  EXPECT_EQ(reg.effective_phase_scale(), Rational(1, 1024));
  EXPECT_EQ(reg.effective_semantics(), core::MeasurementSemantics::AsPhase);
}

TEST(QftBuilder, CostHintMatchesPaperListing3) {
  // Paper: "roughly 45 two-qubit gates and depth near 100" for n=10 exact.
  const core::CostHint hint = qft_cost_hint(10, {});
  EXPECT_EQ(*hint.twoq, 45);
  EXPECT_EQ(*hint.depth, 100);
}

class QftApproximationCost : public ::testing::TestWithParam<int> {};

TEST_P(QftApproximationCost, DropsTriangularCount) {
  const int a = GetParam();
  QftParams params;
  params.approx_degree = a;
  const core::CostHint hint = qft_cost_hint(10, params);
  EXPECT_EQ(*hint.twoq, 45 - a * (a + 1) / 2);
}

INSTANTIATE_TEST_SUITE_P(Degrees, QftApproximationCost, ::testing::Values(0, 1, 2, 3, 5));

TEST(QftBuilder, DescriptorShape) {
  const core::QuantumDataType reg = make_phase_register("reg_phase", 10);
  const core::OperatorDescriptor op = qft_descriptor(reg, {});
  EXPECT_EQ(op.rep_kind, "QFT_TEMPLATE");
  EXPECT_EQ(op.domain_qdt, "reg_phase");
  EXPECT_TRUE(op.in_place());
  EXPECT_EQ(op.param_int("approx_degree", -1), 0);
  ASSERT_TRUE(op.result_schema.has_value());
  EXPECT_EQ(op.result_schema->datatype, core::MeasurementSemantics::AsPhase);
  EXPECT_EQ(op.result_schema->clbit_order.size(), 10u);
  EXPECT_EQ(op.result_schema->clbit_order[9].str(), "reg_phase[9]");
  // The emitted JSON must validate against the QOD schema.
  EXPECT_NO_THROW(core::OperatorDescriptor::from_json(op.to_json()));
}

TEST(QftBuilder, RejectsBadApproxDegree) {
  const core::QuantumDataType reg = make_phase_register("p", 4);
  QftParams params;
  params.approx_degree = 4;
  EXPECT_THROW(qft_descriptor(reg, params), ValidationError);
}

TEST(IsingBuilder, RegisterMatchesPaperSection5) {
  const core::QuantumDataType reg = make_ising_register("ising_vars", 4);
  EXPECT_EQ(reg.encoding, core::EncodingKind::IsingSpin);
  EXPECT_EQ(reg.effective_semantics(), core::MeasurementSemantics::AsBool);
  EXPECT_EQ(reg.bit_order, core::BitOrder::Lsb0);
}

TEST(IsingBuilder, MaxCutDescriptorCarriesGraph) {
  const core::QuantumDataType reg = make_ising_register("ising_vars", 4);
  const core::OperatorDescriptor op = maxcut_ising_descriptor(reg, Graph::cycle(4));
  EXPECT_EQ(op.rep_kind, "ISING_PROBLEM");
  EXPECT_EQ(op.params.at("h").size(), 4u);
  EXPECT_EQ(op.params.at("J").size(), 4u);
  EXPECT_NO_THROW(core::OperatorDescriptor::from_json(op.to_json()));
}

TEST(IsingBuilder, ModelFromDescriptorRoundTrip) {
  const core::QuantumDataType reg = make_ising_register("s", 4);
  const core::OperatorDescriptor op = maxcut_ising_descriptor(reg, Graph::cycle(4));
  const anneal::IsingModel model = ising_model_from_descriptor(op, 4);
  EXPECT_DOUBLE_EQ(model.energy({1, -1, 1, -1}), -4.0);
  EXPECT_DOUBLE_EQ(model.energy({1, 1, 1, 1}), 4.0);
}

TEST(IsingBuilder, CutEnergyDuality) {
  const Graph g = Graph::cycle(4);
  // cut = (W - E)/2: ground energy -4 <-> cut 4; aligned (+4) <-> cut 0.
  EXPECT_DOUBLE_EQ(cut_from_ising_energy(g, -4.0), 4.0);
  EXPECT_DOUBLE_EQ(cut_from_ising_energy(g, 4.0), 0.0);
  EXPECT_DOUBLE_EQ(cut_from_ising_energy(g, 0.0), 2.0);
}

TEST(IsingBuilder, WidthMismatchRejected) {
  const core::QuantumDataType reg = make_ising_register("s", 3);
  EXPECT_THROW(maxcut_ising_descriptor(reg, Graph::cycle(4)), ValidationError);
}

TEST(QaoaBuilder, SequenceStructureMatchesFig2) {
  const core::QuantumDataType reg = make_ising_register("ising_vars", 4);
  const core::OperatorSequence seq = qaoa_sequence(reg, Graph::cycle(4), ring_p1_angles());
  ASSERT_EQ(seq.ops.size(), 4u);  // PREP, COST, MIXER, MEASUREMENT
  EXPECT_EQ(seq.ops[0].rep_kind, "PREP_UNIFORM");
  EXPECT_EQ(seq.ops[1].rep_kind, "ISING_COST_PHASE");
  EXPECT_EQ(seq.ops[2].rep_kind, "MIXER_RX");
  EXPECT_EQ(seq.ops[3].rep_kind, "MEASUREMENT");
  EXPECT_DOUBLE_EQ(seq.ops[1].param_double("gamma", 0), kPi / 4.0);
  EXPECT_DOUBLE_EQ(seq.ops[2].param_double("beta", 0), kPi / 8.0);
  ASSERT_TRUE(seq.ops[3].result_schema.has_value());
  EXPECT_EQ(seq.ops[3].result_schema->datatype, core::MeasurementSemantics::AsBool);
}

TEST(QaoaBuilder, MultiLayerStacks) {
  const core::QuantumDataType reg = make_ising_register("s", 4);
  QaoaAngles angles;
  angles.gammas = {0.1, 0.2, 0.3};
  angles.betas = {0.4, 0.5, 0.6};
  const core::OperatorSequence seq = qaoa_sequence(reg, Graph::cycle(4), angles);
  EXPECT_EQ(seq.ops.size(), 2u + 3u * 2u);
  EXPECT_DOUBLE_EQ(seq.ops[5].param_double("gamma", 0), 0.3);
}

TEST(QaoaBuilder, ValidatesAngles) {
  const core::QuantumDataType reg = make_ising_register("s", 4);
  QaoaAngles bad;
  bad.gammas = {0.1};
  EXPECT_THROW(qaoa_sequence(reg, Graph::cycle(4), bad), ValidationError);
}

TEST(QaoaBuilder, CostHintsAccumulate) {
  const core::QuantumDataType reg = make_ising_register("s", 4);
  const core::OperatorSequence seq = qaoa_sequence(reg, Graph::cycle(4), ring_p1_angles());
  const core::CostHint total = seq.accumulated_cost();
  EXPECT_EQ(*total.twoq, 8);  // 2 per edge, 4 edges, 1 layer
  EXPECT_GT(*total.depth, 0);
}

TEST(StatePrep, PrepUniformShape) {
  const core::QuantumDataType reg = make_ising_register("s", 4);
  const core::OperatorDescriptor op = prep_uniform_descriptor(reg);
  EXPECT_EQ(op.rep_kind, "PREP_UNIFORM");
  EXPECT_EQ(*op.cost_hint->oneq, 4);
}

TEST(StatePrep, BasisStateEncodesTypedValue) {
  const core::QuantumDataType reg = make_uint_register("x", 4);
  const core::OperatorDescriptor op =
      basis_state_prep_descriptor(reg, core::TypedValue::from_uint(6));
  EXPECT_EQ(op.param_int("basis_index", -1), 6);
  EXPECT_EQ(*op.cost_hint->oneq, 2);  // two set bits
  EXPECT_THROW(basis_state_prep_descriptor(reg, core::TypedValue::from_uint(99)),
               ValidationError);
}

TEST(StatePrep, AngleEncodingValidatesArity) {
  const core::QuantumDataType reg = make_uint_register("x", 3);
  EXPECT_NO_THROW(angle_encoding_descriptor(reg, {0.1, 0.2, 0.3}));
  EXPECT_THROW(angle_encoding_descriptor(reg, {0.1}), ValidationError);
}

TEST(Arithmetic, AdderDescriptorShape) {
  const core::QuantumDataType reg = make_uint_register("x", 4);
  const core::OperatorDescriptor op = adder_const_descriptor(reg, 5);
  EXPECT_EQ(op.rep_kind, "ADDER_CONST_TEMPLATE");
  EXPECT_EQ(op.param_int("addend", -1), 5);
  EXPECT_FALSE(op.param_bool("subtract", true));
  EXPECT_GT(*op.cost_hint->twoq, 0);
}

TEST(Arithmetic, ModularAdderValidation) {
  const core::QuantumDataType reg = make_uint_register("x", 4);
  const core::QuantumDataType scratch = make_flag_register("scratch");
  const core::QuantumDataType flag = make_flag_register("flag");
  EXPECT_NO_THROW(modular_adder_const_descriptor(reg, scratch, flag, 3, 13));
  EXPECT_THROW(modular_adder_const_descriptor(reg, scratch, flag, 13, 13), ValidationError);
  EXPECT_THROW(modular_adder_const_descriptor(reg, scratch, flag, 1, 20), ValidationError);
  EXPECT_THROW(modular_adder_const_descriptor(reg, reg, flag, 1, 13), ValidationError);
}

TEST(Arithmetic, ComparatorDescriptorShape) {
  const core::QuantumDataType reg = make_uint_register("x", 4);
  const core::QuantumDataType scratch = make_flag_register("scratch");
  const core::QuantumDataType flag = make_flag_register("flag");
  const core::OperatorDescriptor op = comparator_const_descriptor(reg, scratch, flag, 7);
  EXPECT_EQ(op.codomain_qdt, "flag");
  ASSERT_TRUE(op.result_schema.has_value());
  EXPECT_EQ(op.result_schema->clbit_order[0].str(), "flag[0]");
}

TEST(Booleans, ControlledSwapShape) {
  const core::QuantumDataType reg = make_uint_register("x", 4);
  const core::QuantumDataType ctrl = make_flag_register("c");
  const core::OperatorDescriptor op = controlled_swap_descriptor(reg, ctrl, 1, 3);
  EXPECT_EQ(op.rep_kind, "CONTROLLED_SWAP");
  EXPECT_THROW(controlled_swap_descriptor(reg, ctrl, 1, 1), ValidationError);
  EXPECT_THROW(controlled_swap_descriptor(reg, ctrl, 1, 9), ValidationError);
}

TEST(Booleans, SwapTestShape) {
  const core::QuantumDataType a = make_uint_register("a", 3);
  const core::QuantumDataType b = make_uint_register("b", 3);
  const core::QuantumDataType flag = make_flag_register("flag");
  const core::OperatorDescriptor op = swap_test_descriptor(a, b, flag);
  EXPECT_EQ(op.rep_kind, "SWAP_TEST");
  EXPECT_EQ(op.codomain_qdt, "flag");
  const core::QuantumDataType narrow = make_uint_register("c", 2);
  EXPECT_THROW(swap_test_descriptor(a, narrow, flag), ValidationError);
  EXPECT_THROW(swap_test_descriptor(a, a, flag), ValidationError);
}

TEST(Phase, QpeDescriptorShape) {
  const core::QuantumDataType counting = make_phase_register("count", 4);
  const core::QuantumDataType eigen = make_flag_register("eigen");
  const core::OperatorDescriptor op = qpe_descriptor(counting, eigen, 0.25);
  EXPECT_EQ(op.rep_kind, "QPE_TEMPLATE");
  EXPECT_DOUBLE_EQ(op.param_double("phase_turns", 0), 0.25);
  ASSERT_TRUE(op.result_schema.has_value());
  EXPECT_EQ(op.result_schema->datatype, core::MeasurementSemantics::AsPhase);
  const core::QuantumDataType not_phase = make_uint_register("u", 4);
  EXPECT_THROW(qpe_descriptor(not_phase, eigen, 0.25), ValidationError);
}

TEST(Phase, GadgetValidation) {
  const core::QuantumDataType reg = make_uint_register("x", 4);
  EXPECT_NO_THROW(phase_gadget_descriptor(reg, {0, 2, 3}, 0.5));
  EXPECT_THROW(phase_gadget_descriptor(reg, {}, 0.5), ValidationError);
  EXPECT_THROW(phase_gadget_descriptor(reg, {0, 0}, 0.5), ValidationError);
  EXPECT_THROW(phase_gadget_descriptor(reg, {7}, 0.5), ValidationError);
}

TEST(Variational, MaximizesQuadratic) {
  // f(x) = 1 - (x0 - 1)^2 - (x1 + 2)^2, maximum 1 at (1, -2).
  const auto objective = [](const std::vector<double>& p) {
    return 1.0 - (p[0] - 1.0) * (p[0] - 1.0) - (p[1] + 2.0) * (p[1] + 2.0);
  };
  const OptimResult result = maximize(objective, {0.0, 0.0});
  EXPECT_NEAR(result.best_params[0], 1.0, 0.02);
  EXPECT_NEAR(result.best_params[1], -2.0, 0.02);
  EXPECT_NEAR(result.best_value, 1.0, 1e-3);
  EXPECT_GT(result.evaluations, 1);
}

TEST(Variational, MinimizeWrapsMaximize) {
  const auto objective = [](const std::vector<double>& p) { return (p[0] - 3.0) * (p[0] - 3.0); };
  const OptimResult result = minimize(objective, {0.0});
  EXPECT_NEAR(result.best_params[0], 3.0, 0.02);
  EXPECT_NEAR(result.best_value, 0.0, 1e-3);
}

TEST(Variational, HistoryIsMonotone) {
  const auto objective = [](const std::vector<double>& p) { return -(p[0] * p[0]); };
  const OptimResult result = maximize(objective, {2.0});
  for (std::size_t i = 1; i < result.history.size(); ++i)
    EXPECT_GE(result.history[i], result.history[i - 1]);
}

TEST(Variational, Validation) {
  EXPECT_THROW(maximize([](const std::vector<double>&) { return 0.0; }, {}), ValidationError);
  OptimOptions bad;
  bad.initial_step = -1;
  EXPECT_THROW(maximize([](const std::vector<double>&) { return 0.0; }, {0.0}, bad),
               ValidationError);
}

}  // namespace
}  // namespace quml::algolib

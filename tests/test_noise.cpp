// Tests for the stochastic Pauli noise engine: analytic channel checks
// (readout flip, depolarizing fixed points), determinism, zero-noise
// equivalence in distribution, and the context-block integration through
// the gate backend.

#include <gtest/gtest.h>

#include <cmath>

#include "algolib/ising.hpp"
#include "algolib/qaoa.hpp"
#include "backend/register_backends.hpp"
#include "core/registry.hpp"
#include "sim/noise.hpp"
#include "util/errors.hpp"

namespace quml {
namespace {

using sim::Circuit;
using sim::CountMap;
using sim::NoiseModel;
using sim::NoisyEngine;

double prob_of(const CountMap& counts, const std::string& key, std::int64_t shots) {
  const auto it = counts.find(key);
  return it == counts.end() ? 0.0 : static_cast<double>(it->second) / static_cast<double>(shots);
}

TEST(NoiseModel, Validation) {
  NoiseModel bad;
  bad.depolarizing_1q = 1.5;
  EXPECT_THROW(bad.validate(), ValidationError);
  NoiseModel negative;
  negative.readout_flip = -0.1;
  EXPECT_THROW(negative.validate(), ValidationError);
  NoiseModel ok;
  ok.depolarizing_2q = 0.5;
  EXPECT_NO_THROW(ok.validate());
  EXPECT_TRUE(ok.enabled());
  EXPECT_FALSE(NoiseModel{}.enabled());
}

TEST(NoisyEngine, ReadoutFlipMatchesAnalytic) {
  // |0> measured with flip probability p reads 1 with probability exactly p.
  Circuit c(1, 1);
  c.measure(0, 0);
  NoiseModel model;
  model.readout_flip = 0.2;
  const std::int64_t shots = 100000;
  const CountMap counts = NoisyEngine().run_counts(c, shots, 42, model);
  EXPECT_NEAR(prob_of(counts, "1", shots), 0.2, 0.01);
}

TEST(NoisyEngine, Depolarizing1qFixedPoint) {
  // After a 1q gate with depolarizing p, |1> flips to |0> with probability
  // p * 2/3 * ... : X or Y (2 of 3 Paulis) flip the Z-basis state: P(flip) = 2p/3.
  Circuit c(1, 1);
  c.x(0);
  c.measure(0, 0);
  NoiseModel model;
  model.depolarizing_1q = 0.3;
  const std::int64_t shots = 100000;
  const CountMap counts = NoisyEngine().run_counts(c, shots, 7, model);
  EXPECT_NEAR(prob_of(counts, "0", shots), 0.3 * 2.0 / 3.0, 0.01);
}

TEST(NoisyEngine, GhzParityDecaysWith2qNoise) {
  // Each CX with 2q depolarizing noise randomizes the GHZ parity; more CX
  // layers -> parity expectation decays toward 0.
  auto parity_expectation = [](int chain_length, double p) {
    Circuit c(chain_length, chain_length);
    c.h(0);
    for (int q = 0; q + 1 < chain_length; ++q) c.cx(q, q + 1);
    c.measure_all();
    NoiseModel model;
    model.depolarizing_2q = p;
    const std::int64_t shots = 20000;
    const CountMap counts = NoisyEngine().run_counts(c, shots, 3, model);
    std::int64_t even = 0;
    for (const auto& [key, n] : counts) {
      const bool all_same = key.find('0') == std::string::npos ||
                            key.find('1') == std::string::npos;
      if (all_same) even += n;
    }
    return static_cast<double>(even) / static_cast<double>(shots);
  };
  const double clean = parity_expectation(4, 0.0);
  const double low = parity_expectation(4, 0.02);
  const double high = parity_expectation(4, 0.2);
  EXPECT_NEAR(clean, 1.0, 1e-12);
  EXPECT_GT(low, high);
  EXPECT_GT(clean, low);
}

TEST(NoisyEngine, ZeroNoiseMatchesIdealDistribution) {
  Circuit c(2, 2);
  c.h(0);
  c.cx(0, 1);
  c.measure_all();
  const std::int64_t shots = 50000;
  const CountMap noisy = NoisyEngine().run_counts(c, shots, 11, NoiseModel{});
  // Only the Bell outcomes appear, each with ~1/2.
  EXPECT_EQ(noisy.size(), 2u);
  EXPECT_NEAR(prob_of(noisy, "00", shots), 0.5, 0.01);
  EXPECT_NEAR(prob_of(noisy, "11", shots), 0.5, 0.01);
}

TEST(NoisyEngine, DeterministicInSeed) {
  Circuit c(3, 3);
  c.h(0);
  c.cx(0, 1);
  c.cx(1, 2);
  c.measure_all();
  NoiseModel model;
  model.depolarizing_1q = 0.05;
  model.depolarizing_2q = 0.05;
  model.readout_flip = 0.02;
  const CountMap a = NoisyEngine().run_counts(c, 2000, 5, model);
  const CountMap b = NoisyEngine().run_counts(c, 2000, 5, model);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, NoisyEngine().run_counts(c, 2000, 6, model));
}

TEST(NoisyEngine, InputValidation) {
  Circuit no_clbits(1, 0);
  no_clbits.h(0);
  EXPECT_THROW(NoisyEngine().run_counts(no_clbits, 10, 0, NoiseModel{}), ValidationError);
  Circuit no_measure(1, 1);
  no_measure.h(0);
  EXPECT_THROW(NoisyEngine().run_counts(no_measure, 10, 0, NoiseModel{}), ValidationError);
  Circuit ok(1, 1);
  ok.measure(0, 0);
  EXPECT_THROW(NoisyEngine().run_counts(ok, 0, 0, NoiseModel{}), ValidationError);
}

// --- context integration ------------------------------------------------------

class NoiseContextTest : public ::testing::Test {
 protected:
  void SetUp() override { backend::register_builtin_backends(); }
};

TEST_F(NoiseContextTest, NoiseBlockParsesAndValidates) {
  const core::Context ctx = core::Context::from_json(json::parse(R"({
    "exec": {"engine": "gate.statevector_simulator"},
    "noise": {"enabled": true, "depolarizing_1q": 0.001, "depolarizing_2q": 0.01,
              "readout_flip": 0.02}
  })"));
  ASSERT_TRUE(ctx.noise.has_value());
  EXPECT_TRUE(ctx.noise->enabled);
  EXPECT_DOUBLE_EQ(ctx.noise->depolarizing_2q, 0.01);
  EXPECT_EQ(core::Context::from_json(ctx.to_json()).to_json(), ctx.to_json());
  EXPECT_THROW(core::Context::from_json(
                   json::parse(R"({"noise": {"depolarizing_1q": 2.0}})")),
               SchemaError);
}

TEST_F(NoiseContextTest, QaoaCutDegradesWithNoise) {
  // The QEC motivation made measurable: the same bundle, increasingly noisy
  // contexts, monotonically (stochastically) worse cuts.
  const core::QuantumDataType reg = algolib::make_ising_register("s", 4);
  const algolib::Graph graph = algolib::Graph::cycle(4);
  auto run_with_noise = [&](double p2) {
    core::Context ctx;
    ctx.exec.engine = "gate.statevector_simulator";
    ctx.exec.samples = 8192;
    ctx.exec.seed = 42;
    if (p2 > 0.0) {
      core::NoisePolicy noise;
      noise.enabled = true;
      noise.depolarizing_2q = p2;
      ctx.noise = noise;
    }
    core::RegisterSet regs;
    regs.add(reg);
    const auto result = core::submit(core::JobBundle::package(
        std::move(regs), algolib::qaoa_sequence(reg, graph, algolib::ring_p1_angles()), ctx));
    return result.counts.expectation(
        [&](const std::string& bits) { return graph.cut_value_bits(bits); });
  };
  const double clean = run_with_noise(0.0);
  const double mild = run_with_noise(0.05);
  const double heavy = run_with_noise(0.5);
  EXPECT_NEAR(clean, 3.0, 0.1);
  EXPECT_GT(clean, mild);
  EXPECT_GT(mild, heavy);
  EXPECT_NEAR(heavy, 2.0, 0.2);  // fully mixed -> E[cut] = |E|/2 = 2
}

TEST_F(NoiseContextTest, MetadataReportsNoiseService) {
  const core::QuantumDataType reg = algolib::make_ising_register("s", 4);
  core::Context ctx;
  ctx.exec.engine = "gate.statevector_simulator";
  ctx.exec.samples = 256;
  core::NoisePolicy noise;
  noise.enabled = true;
  noise.readout_flip = 0.01;
  ctx.noise = noise;
  core::RegisterSet regs;
  regs.add(reg);
  const auto result = core::submit(core::JobBundle::package(
      std::move(regs),
      algolib::qaoa_sequence(reg, algolib::Graph::cycle(4), algolib::ring_p1_angles()), ctx));
  EXPECT_DOUBLE_EQ(
      result.metadata.at("services").at("noise").get_double("readout_flip", 0.0), 0.01);
}

TEST_F(NoiseContextTest, DisabledNoiseBlockUsesIdealEngine) {
  const core::QuantumDataType reg = algolib::make_ising_register("s", 4);
  core::Context ctx;
  ctx.exec.engine = "gate.statevector_simulator";
  ctx.exec.samples = 512;
  ctx.exec.seed = 9;
  core::NoisePolicy noise;  // enabled = false
  noise.depolarizing_2q = 0.5;
  ctx.noise = noise;
  core::Context plain = ctx;
  plain.noise.reset();
  auto run = [&](const core::Context& c) {
    core::RegisterSet regs;
    regs.add(reg);
    return core::submit(core::JobBundle::package(
        std::move(regs),
        algolib::qaoa_sequence(reg, algolib::Graph::cycle(4), algolib::ring_p1_angles()), c));
  };
  EXPECT_EQ(run(ctx).counts.to_json(), run(plain).counts.to_json());
}

}  // namespace
}  // namespace quml

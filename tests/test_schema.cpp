// Unit tests for the JSON-Schema validator and the embedded descriptor
// schemas (the paper's qdt-core/qod/ctx schema names).

#include <gtest/gtest.h>

#include "schema/descriptor_schemas.hpp"
#include "schema/validator.hpp"
#include "util/errors.hpp"

namespace quml::schema {
namespace {

json::Value J(const std::string& text) { return json::parse(text); }

TEST(Validator, TypeKeyword) {
  const Validator v = Validator::from_text(R"({"type": "integer"})");
  EXPECT_TRUE(v.validate(J("3")).empty());
  EXPECT_TRUE(v.validate(J("3.0")).empty());  // mathematical integer
  EXPECT_FALSE(v.validate(J("3.5")).empty());
  EXPECT_FALSE(v.validate(J("\"3\"")).empty());
}

TEST(Validator, TypeUnion) {
  const Validator v = Validator::from_text(R"({"type": ["string", "null"]})");
  EXPECT_TRUE(v.validate(J("\"x\"")).empty());
  EXPECT_TRUE(v.validate(J("null")).empty());
  EXPECT_FALSE(v.validate(J("1")).empty());
}

TEST(Validator, RequiredAndProperties) {
  const Validator v = Validator::from_text(
      R"({"type": "object", "required": ["id"], "properties": {"id": {"type": "string"}}})");
  EXPECT_TRUE(v.validate(J(R"({"id": "x"})")).empty());
  const auto missing = v.validate(J("{}"));
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0].keyword, "required");
  EXPECT_FALSE(v.validate(J(R"({"id": 5})")).empty());
}

TEST(Validator, AdditionalPropertiesFalse) {
  const Validator v = Validator::from_text(
      R"({"type": "object", "properties": {"a": true}, "additionalProperties": false})");
  EXPECT_TRUE(v.validate(J(R"({"a": 1})")).empty());
  const auto issues = v.validate(J(R"({"a": 1, "b": 2})"));
  ASSERT_EQ(issues.size(), 1u);
  EXPECT_EQ(issues[0].pointer, "/b");
}

TEST(Validator, AdditionalPropertiesSchema) {
  const Validator v = Validator::from_text(
      R"({"type": "object", "additionalProperties": {"type": "integer"}})");
  EXPECT_TRUE(v.validate(J(R"({"x": 1, "y": 2})")).empty());
  EXPECT_FALSE(v.validate(J(R"({"x": "s"})")).empty());
}

TEST(Validator, EnumAndConst) {
  const Validator e = Validator::from_text(R"({"enum": ["LSB_0", "MSB_0"]})");
  EXPECT_TRUE(e.validate(J("\"LSB_0\"")).empty());
  EXPECT_FALSE(e.validate(J("\"LSB_1\"")).empty());
  const Validator c = Validator::from_text(R"({"const": 42})");
  EXPECT_TRUE(c.validate(J("42")).empty());
  EXPECT_FALSE(c.validate(J("41")).empty());
}

TEST(Validator, NumericBounds) {
  const Validator v = Validator::from_text(
      R"({"minimum": 1, "maximum": 64, "type": "integer"})");
  EXPECT_TRUE(v.validate(J("1")).empty());
  EXPECT_TRUE(v.validate(J("64")).empty());
  EXPECT_FALSE(v.validate(J("0")).empty());
  EXPECT_FALSE(v.validate(J("65")).empty());
  const Validator ex = Validator::from_text(R"({"exclusiveMinimum": 0, "exclusiveMaximum": 1})");
  EXPECT_TRUE(ex.validate(J("0.5")).empty());
  EXPECT_FALSE(ex.validate(J("0")).empty());
  EXPECT_FALSE(ex.validate(J("1")).empty());
}

TEST(Validator, MultipleOf) {
  const Validator v = Validator::from_text(R"({"multipleOf": 0.5})");
  EXPECT_TRUE(v.validate(J("2.5")).empty());
  EXPECT_FALSE(v.validate(J("2.3")).empty());
}

TEST(Validator, StringConstraints) {
  const Validator v = Validator::from_text(
      R"({"type": "string", "minLength": 2, "maxLength": 4, "pattern": "^[a-z]+$"})");
  EXPECT_TRUE(v.validate(J("\"ab\"")).empty());
  EXPECT_FALSE(v.validate(J("\"a\"")).empty());
  EXPECT_FALSE(v.validate(J("\"abcde\"")).empty());
  EXPECT_FALSE(v.validate(J("\"AB\"")).empty());
}

TEST(Validator, ArrayConstraints) {
  const Validator v = Validator::from_text(
      R"({"type": "array", "items": {"type": "integer"}, "minItems": 1, "maxItems": 3,
          "uniqueItems": true})");
  EXPECT_TRUE(v.validate(J("[1, 2]")).empty());
  EXPECT_FALSE(v.validate(J("[]")).empty());
  EXPECT_FALSE(v.validate(J("[1,2,3,4]")).empty());
  EXPECT_FALSE(v.validate(J("[1, 1]")).empty());
  EXPECT_FALSE(v.validate(J("[1, \"x\"]")).empty());
}

TEST(Validator, PrefixItems) {
  const Validator v = Validator::from_text(
      R"({"type": "array", "prefixItems": [{"type": "integer"}, {"type": "string"}],
          "items": {"type": "boolean"}})");
  EXPECT_TRUE(v.validate(J(R"([1, "a", true, false])")).empty());
  EXPECT_FALSE(v.validate(J(R"(["a", "b"])")).empty());
  EXPECT_FALSE(v.validate(J(R"([1, "a", 3])")).empty());
}

TEST(Validator, Combinators) {
  const Validator any = Validator::from_text(
      R"({"anyOf": [{"type": "integer"}, {"type": "string"}]})");
  EXPECT_TRUE(any.validate(J("1")).empty());
  EXPECT_TRUE(any.validate(J("\"x\"")).empty());
  EXPECT_FALSE(any.validate(J("true")).empty());

  const Validator one = Validator::from_text(
      R"({"oneOf": [{"type": "number"}, {"type": "integer"}]})");
  EXPECT_FALSE(one.validate(J("1")).empty());   // matches both
  EXPECT_TRUE(one.validate(J("1.5")).empty());  // matches number only

  const Validator all = Validator::from_text(
      R"({"allOf": [{"minimum": 0}, {"maximum": 10}]})");
  EXPECT_TRUE(all.validate(J("5")).empty());
  EXPECT_FALSE(all.validate(J("11")).empty());

  const Validator n = Validator::from_text(R"({"not": {"type": "null"}})");
  EXPECT_TRUE(n.validate(J("1")).empty());
  EXPECT_FALSE(n.validate(J("null")).empty());
}

TEST(Validator, LocalRef) {
  const Validator v = Validator::from_text(
      R"({"$defs": {"width": {"type": "integer", "minimum": 1}},
          "type": "object", "properties": {"w": {"$ref": "#/$defs/width"}}})");
  EXPECT_TRUE(v.validate(J(R"({"w": 4})")).empty());
  EXPECT_FALSE(v.validate(J(R"({"w": 0})")).empty());
}

TEST(Validator, ValidateOrThrowCarriesPointer) {
  const Validator v = Validator::from_text(
      R"({"type": "object", "properties": {"a": {"type": "integer"}}})");
  try {
    v.validate_or_throw(J(R"({"a": "bad"})"));
    FAIL() << "expected SchemaError";
  } catch (const SchemaError& e) {
    EXPECT_EQ(e.pointer(), "/a");
  }
}

// --- embedded descriptor schemas -------------------------------------------

TEST(DescriptorSchemas, PaperListing2Validates) {
  // Verbatim structure of the paper's Listing 2.
  const json::Value qdt = J(R"({
    "$schema": "qdt-core.schema.json",
    "id": "reg_phase",
    "name": "phase",
    "width": 10,
    "encoding_kind": "PHASE_REGISTER",
    "bit_order": "LSB_0",
    "measurement_semantics": "AS_PHASE",
    "phase_scale": "1/1024"
  })");
  EXPECT_TRUE(qdt_validator().validate(qdt).empty());
}

TEST(DescriptorSchemas, QdtRejectsBadWidth) {
  EXPECT_FALSE(qdt_validator()
                   .validate(J(R"({"$schema":"qdt-core.schema.json","id":"r","width":0,
                                   "encoding_kind":"UINT_REGISTER"})"))
                   .empty());
  EXPECT_FALSE(qdt_validator()
                   .validate(J(R"({"$schema":"qdt-core.schema.json","id":"r","width":65,
                                   "encoding_kind":"UINT_REGISTER"})"))
                   .empty());
}

TEST(DescriptorSchemas, QdtRejectsUnknownEncoding) {
  EXPECT_FALSE(qdt_validator()
                   .validate(J(R"({"$schema":"qdt-core.schema.json","id":"r","width":4,
                                   "encoding_kind":"QUATERNION"})"))
                   .empty());
}

TEST(DescriptorSchemas, QdtRejectsBadPhaseScale) {
  EXPECT_FALSE(qdt_validator()
                   .validate(J(R"({"$schema":"qdt-core.schema.json","id":"r","width":4,
                                   "encoding_kind":"PHASE_REGISTER","phase_scale":"pi/4"})"))
                   .empty());
}

TEST(DescriptorSchemas, PaperListing3Validates) {
  const json::Value qod = J(R"({
    "$schema": "qod.schema.json",
    "name": "QFT",
    "rep_kind": "QFT_TEMPLATE",
    "domain_qdt": "reg_phase",
    "codomain_qdt": "reg_phase",
    "params": {"approx_degree": 0, "do_swaps": true, "inverse": false},
    "cost_hint": {"twoq": 45, "depth": 100},
    "result_schema": {
      "basis": "Z",
      "datatype": "AS_PHASE",
      "bit_significance": "LSB_0",
      "clbit_order": ["reg_phase[0]", "reg_phase[1]", "reg_phase[2]"]
    }
  })");
  EXPECT_TRUE(qod_validator().validate(qod).empty());
}

TEST(DescriptorSchemas, QodRejectsLowercaseRepKind) {
  EXPECT_FALSE(qod_validator()
                   .validate(J(R"({"$schema":"qod.schema.json","name":"x","rep_kind":"qft",
                                   "domain_qdt":"r"})"))
                   .empty());
}

TEST(DescriptorSchemas, QodRejectsNegativeCost) {
  EXPECT_FALSE(qod_validator()
                   .validate(J(R"({"$schema":"qod.schema.json","name":"x","rep_kind":"QFT_TEMPLATE",
                                   "domain_qdt":"r","cost_hint":{"twoq":-1}})"))
                   .empty());
}

TEST(DescriptorSchemas, QodRejectsMalformedClbitRef) {
  EXPECT_FALSE(qod_validator()
                   .validate(J(R"({"$schema":"qod.schema.json","name":"x","rep_kind":"M",
                                   "domain_qdt":"r",
                                   "result_schema":{"basis":"Z","datatype":"AS_BOOL",
                                                    "clbit_order":["no_brackets"]}})"))
                   .empty());
}

TEST(DescriptorSchemas, PaperListing4Validates) {
  const json::Value ctx = J(R"({
    "$schema": "ctx.schema.json",
    "exec": {
      "engine": "gate.aer_simulator",
      "samples": 4096,
      "seed": 42,
      "target": {
        "basis_gates": ["sx", "rz", "cx"],
        "coupling_map": [[0,1],[1,2],[2,3],[3,4],[4,5],[5,6],[6,7],[7,8],[8,9]]
      },
      "options": {"optimization_level": 2}
    }
  })");
  EXPECT_TRUE(ctx_validator().validate(ctx).empty());
}

TEST(DescriptorSchemas, PaperListing5QecBlockValidates) {
  const json::Value ctx = J(R"({
    "$schema": "ctx.schema.json",
    "exec": {"engine": "gate.aer_simulator"},
    "qec": {
      "code_family": "surface",
      "distance": 7,
      "allocator": "auto",
      "logical_gate_set": ["H", "S", "CNOT", "T", "MEASURE_Z"]
    },
    "extensions": {}
  })");
  EXPECT_TRUE(ctx_validator().validate(ctx).empty());
}

TEST(DescriptorSchemas, CtxRejectsEvenDistanceViaMinimum) {
  // Schema enforces distance >= 3; semantic oddness is checked by the QEC
  // service itself.
  EXPECT_FALSE(ctx_validator()
                   .validate(J(R"({"$schema":"ctx.schema.json",
                                   "qec":{"code_family":"surface","distance":2}})"))
                   .empty());
}

TEST(DescriptorSchemas, CtxRejectsUnknownTopLevelBlock) {
  EXPECT_FALSE(ctx_validator()
                   .validate(J(R"({"$schema":"ctx.schema.json","execution":{}})"))
                   .empty());
}

TEST(DescriptorSchemas, JobBundleValidates) {
  const json::Value job = J(R"({
    "$schema": "job.schema.json",
    "job_id": "job-1",
    "qdts": [{"id": "r", "width": 4, "encoding_kind": "ISING_SPIN"}],
    "operators": [{"name": "ISING", "rep_kind": "ISING_PROBLEM", "domain_qdt": "r"}],
    "context": {"exec": {"engine": "anneal.neal_simulator"}}
  })");
  EXPECT_TRUE(job_validator().validate(job).empty());
}

TEST(DescriptorSchemas, JobRequiresOperators) {
  EXPECT_FALSE(job_validator()
                   .validate(J(R"({"$schema":"job.schema.json",
                                   "qdts":[{"id":"r"}],"operators":[]})"))
                   .empty());
}

TEST(DescriptorSchemas, ValidatorForRoutesBySchemaName) {
  EXPECT_EQ(&validator_for(J(R"({"$schema": "qdt-core.schema.json"})")), &qdt_validator());
  EXPECT_EQ(&validator_for(J(R"({"$schema": "qod.schema.json"})")), &qod_validator());
  EXPECT_EQ(&validator_for(J(R"({"$schema": "ctx.schema.json"})")), &ctx_validator());
  EXPECT_EQ(&validator_for(J(R"({"$schema": "job.schema.json"})")), &job_validator());
  EXPECT_THROW(validator_for(J(R"({"$schema": "nope.schema.json"})")), SchemaError);
  EXPECT_THROW(validator_for(J("{}")), SchemaError);
}

}  // namespace
}  // namespace quml::schema

// Unit tests for operator descriptors (cost hints, result schemas, clbit
// references) and context descriptors (exec/target/qec/anneal blocks, the
// paper's "contexts" wrapper alias).

#include <gtest/gtest.h>

#include "core/context.hpp"
#include "core/qod.hpp"
#include "util/errors.hpp"

namespace quml::core {
namespace {

TEST(CostHint, AccumulationRules) {
  CostHint a;
  a.oneq = 10;
  a.twoq = 45;
  a.depth = 100;
  a.ancillas = 2;
  CostHint b;
  b.twoq = 5;
  b.depth = 10;
  b.ancillas = 1;
  b.duration_us = 3.5;
  a += b;
  EXPECT_EQ(*a.oneq, 10);
  EXPECT_EQ(*a.twoq, 50);
  EXPECT_EQ(*a.depth, 110);
  EXPECT_EQ(*a.ancillas, 2);  // max, not sum: scratch is reusable
  EXPECT_DOUBLE_EQ(*a.duration_us, 3.5);
}

TEST(CostHint, EmptyAndJson) {
  CostHint h;
  EXPECT_TRUE(h.empty());
  h.twoq = 45;
  h.depth = 100;
  EXPECT_FALSE(h.empty());
  const CostHint back = CostHint::from_json(h.to_json());
  EXPECT_EQ(*back.twoq, 45);
  EXPECT_EQ(*back.depth, 100);
  EXPECT_FALSE(back.oneq.has_value());
}

TEST(ClbitRef, ParseAndFormat) {
  const ClbitRef ref = ClbitRef::parse("reg_phase[7]");
  EXPECT_EQ(ref.reg, "reg_phase");
  EXPECT_EQ(ref.index, 7u);
  EXPECT_EQ(ref.str(), "reg_phase[7]");
}

TEST(ClbitRef, ParseRejectsMalformed) {
  EXPECT_THROW(ClbitRef::parse("reg_phase"), ValidationError);
  EXPECT_THROW(ClbitRef::parse("[3]"), ValidationError);
  EXPECT_THROW(ClbitRef::parse("r[]"), ValidationError);
  EXPECT_THROW(ClbitRef::parse("r[x]"), ValidationError);
}

TEST(ResultSchema, JsonRoundTrip) {
  ResultSchema rs;
  rs.basis = Basis::Z;
  rs.datatype = MeasurementSemantics::AsPhase;
  rs.bit_significance = BitOrder::Lsb0;
  for (unsigned i = 0; i < 3; ++i) rs.clbit_order.push_back({"reg_phase", i});
  const ResultSchema back = ResultSchema::from_json(rs.to_json());
  EXPECT_EQ(back.basis, Basis::Z);
  EXPECT_EQ(back.datatype, MeasurementSemantics::AsPhase);
  ASSERT_EQ(back.clbit_order.size(), 3u);
  EXPECT_EQ(back.clbit_order[2], (ClbitRef{"reg_phase", 2}));
}

TEST(OperatorDescriptor, PaperListing3RoundTrip) {
  const json::Value doc = json::parse(R"({
    "$schema": "qod.schema.json",
    "name": "QFT",
    "rep_kind": "QFT_TEMPLATE",
    "domain_qdt": "reg_phase",
    "codomain_qdt": "reg_phase",
    "params": {"approx_degree": 0, "do_swaps": true, "inverse": false},
    "cost_hint": {"twoq": 45, "depth": 100},
    "result_schema": {"basis": "Z", "datatype": "AS_PHASE", "bit_significance": "LSB_0",
                      "clbit_order": ["reg_phase[0]", "reg_phase[1]"]}
  })");
  const OperatorDescriptor op = OperatorDescriptor::from_json(doc);
  EXPECT_EQ(op.rep_kind, "QFT_TEMPLATE");
  EXPECT_TRUE(op.in_place());
  EXPECT_EQ(op.param_int("approx_degree", -1), 0);
  EXPECT_TRUE(op.param_bool("do_swaps", false));
  EXPECT_FALSE(op.param_bool("inverse", true));
  EXPECT_EQ(*op.cost_hint->twoq, 45);
  EXPECT_EQ(OperatorDescriptor::from_json(op.to_json()), op);
}

TEST(OperatorDescriptor, ParamAccessorsWithDefaults) {
  OperatorDescriptor op;
  op.rep_kind = "X";
  op.params.set("gamma", json::Value(0.5));
  EXPECT_DOUBLE_EQ(op.param_double("gamma", 0.0), 0.5);
  EXPECT_DOUBLE_EQ(op.param_double("missing", -1.0), -1.0);
  EXPECT_EQ(op.param_int("missing", 9), 9);
}

TEST(OperatorDescriptor, InPlaceDetection) {
  OperatorDescriptor op;
  op.domain_qdt = "a";
  EXPECT_TRUE(op.in_place());  // empty codomain
  op.codomain_qdt = "a";
  EXPECT_TRUE(op.in_place());
  op.codomain_qdt = "b";
  EXPECT_FALSE(op.in_place());
}

TEST(Context, PaperListing4RoundTrip) {
  const json::Value doc = json::parse(R"({
    "$schema": "ctx.schema.json",
    "exec": {
      "engine": "gate.aer_simulator",
      "samples": 4096,
      "seed": 42,
      "target": {
        "basis_gates": ["sx", "rz", "cx"],
        "coupling_map": [[0,1],[1,2],[2,3],[3,4],[4,5],[5,6],[6,7],[7,8],[8,9]]
      },
      "options": {"optimization_level": 2}
    }
  })");
  const Context ctx = Context::from_json(doc);
  EXPECT_EQ(ctx.exec.engine, "gate.aer_simulator");
  EXPECT_EQ(ctx.exec.samples, 4096);
  EXPECT_EQ(ctx.exec.seed, 42u);
  EXPECT_EQ(ctx.exec.target.basis_gates.size(), 3u);
  EXPECT_EQ(ctx.exec.target.coupling_map.size(), 9u);
  EXPECT_FALSE(ctx.exec.target.all_to_all());
  EXPECT_EQ(ctx.exec.optimization_level(), 2);
  const Context back = Context::from_json(ctx.to_json());
  EXPECT_EQ(back.to_json(), ctx.to_json());
}

TEST(Context, OmittedTargetIsAllToAll) {
  const Context ctx = Context::from_json(
      json::parse(R"({"exec": {"engine": "gate.aer_simulator"}})"));
  EXPECT_TRUE(ctx.exec.target.all_to_all());
  EXPECT_TRUE(ctx.exec.target.empty());
}

TEST(Context, PaperListing5QecBlock) {
  const Context ctx = Context::from_json(json::parse(R"({
    "exec": {"engine": "gate.aer_simulator"},
    "qec": {"code_family": "surface", "distance": 7, "allocator": "auto",
            "logical_gate_set": ["H", "S", "CNOT", "T", "MEASURE_Z"]}
  })"));
  ASSERT_TRUE(ctx.qec.has_value());
  EXPECT_EQ(ctx.qec->code_family, "surface");
  EXPECT_EQ(ctx.qec->distance, 7);
  EXPECT_EQ(ctx.qec->allocator, "auto");
  EXPECT_EQ(ctx.qec->logical_gate_set.size(), 5u);
}

TEST(Context, PaperContextsWrapperAliasForAnneal) {
  // Paper §5: the annealer artifact nests blocks under "contexts".
  const Context ctx = Context::from_json(json::parse(R"({
    "exec": {"engine": "anneal.neal_simulator"},
    "contexts": {"anneal": {"num_reads": 1000}}
  })"));
  ASSERT_TRUE(ctx.anneal.has_value());
  EXPECT_EQ(ctx.anneal->num_reads, 1000);
}

TEST(Context, AnnealDefaults) {
  const AnnealPolicy p;
  EXPECT_EQ(p.num_reads, 1000);
  EXPECT_EQ(p.num_sweeps, 1000);
  EXPECT_EQ(p.schedule, "geometric");
  EXPECT_FALSE(p.beta_min.has_value());
}

TEST(Context, MidCircuitOptIn) {
  Context ctx;
  EXPECT_FALSE(ctx.allows_mid_circuit_measurement());
  ctx.exec.options.set("allow_mid_circuit_measurement", json::Value(true));
  EXPECT_TRUE(ctx.allows_mid_circuit_measurement());
}

TEST(Context, RejectsSchemaViolations) {
  EXPECT_THROW(Context::from_json(json::parse(R"({"exec": {"samples": 0}})")), SchemaError);
  EXPECT_THROW(Context::from_json(json::parse(R"({"exec": {"engine": ""}})")), SchemaError);
  EXPECT_THROW(Context::from_json(json::parse(R"({"anneal": {"num_reads": -5}})")), SchemaError);
}

TEST(Context, PulseAndCommBlocks) {
  const Context ctx = Context::from_json(json::parse(R"({
    "exec": {"engine": "gate.aer_simulator"},
    "pulse": {"enabled": true, "cx_duration_ns": 250},
    "comm": {"allow_teleportation": true,
             "qpus": [{"name": "left", "qubits": 3}, {"name": "right", "qubits": 3}],
             "epr_fidelity": 0.97}
  })"));
  ASSERT_TRUE(ctx.pulse.has_value());
  EXPECT_TRUE(ctx.pulse->enabled);
  EXPECT_DOUBLE_EQ(ctx.pulse->cx_duration_ns, 250.0);
  ASSERT_TRUE(ctx.comm.has_value());
  EXPECT_TRUE(ctx.comm->allow_teleportation);
  EXPECT_EQ(ctx.comm->qpus.size(), 2u);
  EXPECT_DOUBLE_EQ(ctx.comm->epr_fidelity, 0.97);
}

TEST(Context, SwappingContextKeepsIntentArtifactsUntouched) {
  // The portability core claim at descriptor level: two contexts, same
  // operator JSON byte-for-byte.
  OperatorDescriptor op;
  op.name = "QFT";
  op.rep_kind = "QFT_TEMPLATE";
  op.domain_qdt = "reg_phase";
  const json::Value before = op.to_json();

  Context gate_ctx;
  gate_ctx.exec.engine = "gate.statevector_simulator";
  Context anneal_ctx;
  anneal_ctx.exec.engine = "anneal.simulated_annealer";
  anneal_ctx.anneal = AnnealPolicy{};

  EXPECT_EQ(op.to_json(), before);
  EXPECT_NE(gate_ctx.to_json(), anneal_ctx.to_json());
}

}  // namespace
}  // namespace quml::core

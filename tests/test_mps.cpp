// Directed coverage for the MPS simulation state (sim/mps): canonical-form
// maintenance, adjacent and routed multi-qubit application, truncation
// accounting, measurement/collapse, exact sampling, and the past-the-wall
// widths (50-64 qubits) the representation exists for.  Cross-representation
// equivalence at scale lives in tests/test_cross_engine.cpp; this suite pins
// the MPS-specific invariants.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>

#include "sim/engine.hpp"
#include "sim/mps.hpp"
#include "sim/statevector.hpp"
#include "util/errors.hpp"
#include "util/rng.hpp"

namespace quml::sim {
namespace {

constexpr double kTol = 1e-10;

/// Exact MPS configuration: bond cap far above anything a small circuit can
/// reach, no cutoff (beyond the mandatory exact-zero drop).
MpsConfig exact_config() {
  MpsConfig config;
  config.max_bond_dim = 4096;
  config.truncation_cutoff = 0.0;
  return config;
}

void apply_gate_by_gate(SimState& state, const Circuit& c) {
  for (const auto& inst : c.instructions())
    if (inst.gate != Gate::Barrier) state.apply(inst);
}

double max_amp_diff(const SimState& a, const Statevector& b) {
  double md = 0.0;
  for (std::uint64_t i = 0; i < b.dim(); ++i)
    md = std::max(md, std::abs(a.amplitude(i) - b.amplitude(i)));
  return md;
}

/// Random circuit over 1q rotations and the two-qubit vocabulary, operands
/// drawn freely so non-adjacent supports and descending orders occur.
Circuit random_circuit(std::uint64_t seed, int n, int gates) {
  Rng rng(seed);
  Circuit c(n, 0);
  const auto wire = [&] { return static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n))); };
  const auto other = [&](int q) {
    return (q + 1 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n - 1)))) % n;
  };
  const auto angle = [&] { return rng.next_double() * 6.0 - 3.0; };
  for (int i = 0; i < gates; ++i) {
    const int q = wire();
    switch (rng.next_below(8)) {
      case 0: c.h(q); break;
      case 1: c.rx(angle(), q); break;
      case 2: c.u3(angle(), angle(), angle(), q); break;
      case 3: c.t(q); break;
      case 4: c.cx(q, other(q)); break;
      case 5: c.cz(q, other(q)); break;
      case 6: c.rzz(angle(), q, other(q)); break;
      case 7: c.cp(angle(), q, other(q)); break;
    }
  }
  return c;
}

TEST(Mps, InitialStateIsAllZeros) {
  Mps mps(5, exact_config());
  EXPECT_EQ(std::string(mps.representation()), "mps");
  EXPECT_EQ(mps.num_qubits(), 5);
  EXPECT_NEAR(std::abs(mps.amplitude(0)), 1.0, kTol);
  EXPECT_NEAR(mps.norm(), 1.0, kTol);
  EXPECT_EQ(mps.bond_dimension(), 1);
}

TEST(Mps, ConstructorRejectsBadArguments) {
  EXPECT_THROW(Mps(0), ValidationError);
  EXPECT_THROW(Mps(65), ValidationError);
  MpsConfig bad;
  bad.max_bond_dim = 0;
  EXPECT_THROW(Mps(4, bad), ValidationError);
  bad = MpsConfig{};
  bad.truncation_cutoff = -1.0;
  EXPECT_THROW(Mps(4, bad), ValidationError);
}

TEST(Mps, SingleQubitGatesMatchStatevector) {
  Circuit c(3, 0);
  c.h(0);
  c.t(1);
  c.u3(0.3, -1.1, 2.2, 2);
  c.rz(0.7, 0);
  c.sx(1);
  Mps mps(3, exact_config());
  Statevector sv(3);
  apply_gate_by_gate(mps, c);
  apply_gate_by_gate(sv, c);
  EXPECT_LT(max_amp_diff(mps, sv), kTol);
}

TEST(Mps, AdjacentTwoQubitGateMatchesStatevector) {
  Circuit c(2, 0);
  c.h(0);
  c.cx(0, 1);
  c.rzz(0.4, 0, 1);
  Mps mps(2, exact_config());
  Statevector sv(2);
  apply_gate_by_gate(mps, c);
  apply_gate_by_gate(sv, c);
  EXPECT_LT(max_amp_diff(mps, sv), kTol);
  EXPECT_EQ(mps.bond_dimension(), 2);
}

TEST(Mps, NonAdjacentAndDescendingOperandsMatchStatevector) {
  Circuit c(5, 0);
  c.h(4);
  c.cx(4, 0);  // descending, distance 4: full swap routing both ways
  c.cp(0.9, 3, 1);
  c.ccx(4, 0, 2);
  c.cswap(0, 4, 2);
  Mps mps(5, exact_config());
  Statevector sv(5);
  apply_gate_by_gate(mps, c);
  apply_gate_by_gate(sv, c);
  EXPECT_LT(max_amp_diff(mps, sv), kTol);
  EXPECT_NEAR(mps.norm(), 1.0, kTol);
}

TEST(Mps, RandomCircuitsMatchStatevectorExactly) {
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const Circuit c = random_circuit(seed, 6, 48);
    Mps mps(6, exact_config());
    Statevector sv(6);
    apply_gate_by_gate(mps, c);
    apply_gate_by_gate(sv, c);
    EXPECT_LT(max_amp_diff(mps, sv), kTol) << "seed " << seed;
    EXPECT_NEAR(mps.truncation_weight(), 0.0, 1e-12) << "seed " << seed;
  }
}

TEST(Mps, FusedProgramMatchesStatevector) {
  const Circuit c = random_circuit(77, 6, 60);
  FusionOptions options;
  options.max_qubits = 2;
  options.max_structured_qubits = 4;
  Mps mps(6, exact_config());
  Statevector sv(6);
  apply_fused(mps, fuse_unitaries(c, options));
  apply_gate_by_gate(sv, c);
  EXPECT_LT(max_amp_diff(mps, sv), kTol);
}

TEST(Mps, ProbabilitiesMatchStatevector) {
  const Circuit c = random_circuit(5, 5, 30);
  Mps mps(5, exact_config());
  Statevector sv(5);
  apply_gate_by_gate(mps, c);
  apply_gate_by_gate(sv, c);
  const auto pm = mps.probabilities();
  const auto ps = sv.probabilities();
  ASSERT_EQ(pm.size(), ps.size());
  for (std::size_t i = 0; i < pm.size(); ++i) EXPECT_NEAR(pm[i], ps[i], kTol);
}

TEST(Mps, GhzAt50QubitsStaysBondTwo) {
  const int n = 50;
  Mps mps(n);
  Mat2 h;
  const double r = 1.0 / std::sqrt(2.0);
  h.m = {{{c64(r, 0.0), c64(r, 0.0)}, {c64(r, 0.0), c64(-r, 0.0)}}};
  mps.apply_1q(0, h);
  Circuit chain(n, 0);
  for (int i = 0; i + 1 < n; ++i) chain.cx(i, i + 1);
  apply_gate_by_gate(mps, chain);
  EXPECT_LE(mps.peak_bond_dimension(), 2);
  EXPECT_NEAR(mps.truncation_weight(), 0.0, 1e-12);
  const std::uint64_t ones = ~std::uint64_t{0} >> (64 - n);
  EXPECT_NEAR(std::norm(mps.amplitude(0)), 0.5, kTol);
  EXPECT_NEAR(std::norm(mps.amplitude(ones)), 0.5, kTol);
  EXPECT_NEAR(std::norm(mps.amplitude(1)), 0.0, kTol);

  Rng rng(123);
  const BasisHistogram hist = mps.sample_basis(400, rng);
  std::int64_t total = 0;
  for (const auto& [basis, count] : hist) {
    EXPECT_TRUE(basis == 0 || basis == ones) << basis;
    total += count;
  }
  EXPECT_EQ(total, 400);
  EXPECT_EQ(hist.size(), 2u);
}

TEST(Mps, GhzLadderAt64Qubits) {
  const int n = 64;
  Circuit c(n, 0);
  c.h(0);
  for (int i = 0; i + 1 < n; ++i) c.cx(i, i + 1);
  Mps mps(n);
  apply_gate_by_gate(mps, c);
  EXPECT_LE(mps.peak_bond_dimension(), 2);
  EXPECT_NEAR(std::norm(mps.amplitude(0)), 0.5, kTol);
  EXPECT_NEAR(std::norm(mps.amplitude(~std::uint64_t{0})), 0.5, kTol);
}

TEST(Mps, TruncationCapsBondAndRenormalizes) {
  // Volume-law random circuit under a tight cap: the state stays normalized
  // and the discarded weight is visible.
  const Circuit c = random_circuit(9, 8, 80);
  MpsConfig config;
  config.max_bond_dim = 2;
  config.truncation_cutoff = 0.0;
  Mps mps(8, config);
  apply_gate_by_gate(mps, c);
  EXPECT_LE(mps.bond_dimension(), 2);
  // 1e-8, not kTol: 80 gates under a bond cap of 2 renormalize the kept
  // spectrum at nearly every split, and the accumulated rounding differs
  // slightly between the OpenMP and serial builds' FP contraction.
  EXPECT_NEAR(mps.norm(), 1.0, 1e-8);
  EXPECT_GT(mps.truncation_weight(), 0.0);
  double total = 0.0;
  for (const double p : mps.probabilities()) total += p;
  EXPECT_NEAR(total, 1.0, 1e-8);
}

TEST(Mps, MeasureCollapseOnGhz) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Circuit c(12, 0);
    c.h(0);
    for (int i = 0; i + 1 < 12; ++i) c.cx(i, i + 1);
    Mps mps(12, exact_config());
    apply_gate_by_gate(mps, c);
    Rng rng(seed);
    const int first = mps.measure_collapse(5, rng);
    // GHZ: one measurement pins every other qubit.
    for (int q = 0; q < 12; ++q) EXPECT_EQ(mps.measure_collapse(q, rng), first);
    EXPECT_NEAR(mps.norm(), 1.0, kTol);
  }
}

TEST(Mps, ResetQubitForcesZero) {
  Circuit c(4, 0);
  c.h(0);
  c.cx(0, 2);
  Mps mps(4, exact_config());
  apply_gate_by_gate(mps, c);
  Rng rng(7);
  mps.reset_qubit(2, rng);
  // Qubit 2 is |0> regardless of the measured branch.
  for (std::uint64_t basis = 0; basis < 16; ++basis) {
    if ((basis >> 2) & 1u) {
      EXPECT_NEAR(std::abs(mps.amplitude(basis)), 0.0, kTol);
    }
  }
  EXPECT_NEAR(mps.norm(), 1.0, kTol);
}

TEST(Mps, CloneIsIndependent) {
  Circuit c(5, 0);
  c.h(0);
  c.cx(0, 4);
  Mps mps(5, exact_config());
  apply_gate_by_gate(mps, c);
  const std::unique_ptr<SimState> copy = mps.clone();
  Mat2 x;
  x.m[0][1] = c64(1.0, 0.0);
  x.m[1][0] = c64(1.0, 0.0);
  mps.apply_1q(0, x);
  // The clone still holds the pre-X state.
  EXPECT_NEAR(std::norm(copy->amplitude(0)), 0.5, kTol);
  EXPECT_NEAR(std::norm(copy->amplitude(0b10001)), 0.5, kTol);
  EXPECT_NEAR(std::norm(mps.amplitude(0b00001)), 0.5, kTol);
}

TEST(Mps, SamplingIsDeterministicPerSeed) {
  const Circuit c = random_circuit(21, 10, 40);
  const auto run = [&] {
    Mps mps(10, exact_config());
    apply_gate_by_gate(mps, c);
    Rng rng(99);
    return mps.sample_basis(256, rng);
  };
  const BasisHistogram a = run();
  const BasisHistogram b = run();
  EXPECT_EQ(a.size(), b.size());
  for (const auto& [basis, count] : a) {
    const auto it = b.find(basis);
    ASSERT_NE(it, b.end());
    EXPECT_EQ(it->second, count);
  }
}

TEST(Mps, SampledFrequenciesTrackProbabilities) {
  const Circuit c = random_circuit(31, 6, 30);
  Mps mps(6, exact_config());
  apply_gate_by_gate(mps, c);
  const std::vector<double> probs = mps.probabilities();
  Rng rng(5);
  const BasisHistogram hist = mps.sample_basis(20000, rng);
  double tvd = 0.0;
  for (std::uint64_t basis = 0; basis < probs.size(); ++basis) {
    const auto it = hist.find(basis);
    const double freq = it == hist.end() ? 0.0 : static_cast<double>(it->second) / 20000.0;
    tvd += std::abs(freq - probs[basis]);
  }
  EXPECT_LT(tvd / 2.0, 0.05);
}

TEST(Mps, ValidationErrors) {
  Mps mps(4, exact_config());
  Mat2 id = Mat2::identity();
  EXPECT_THROW(mps.apply_1q(4, id), ValidationError);
  EXPECT_THROW(mps.apply_1q(-1, id), ValidationError);
  const std::vector<int> dup{1, 1};
  std::vector<c64> u4(16, c64{});
  EXPECT_THROW(mps.apply_matrix(dup, u4.data()), ValidationError);
  Rng rng(0);
  EXPECT_THROW(mps.measure_collapse(9, rng), ValidationError);
  Mps wide(30);
  EXPECT_THROW(wide.probabilities(), ValidationError);
}

TEST(Mps, EngineRunsMpsEndToEnd) {
  // The engine's trailing path over the MPS representation: a 40-qubit GHZ
  // samples only the two legal strings.
  const int n = 40;
  Circuit c(n, n);
  c.h(0);
  for (int i = 0; i + 1 < n; ++i) c.cx(i, i + 1);
  c.measure_all();
  StateConfig config;
  config.representation = StateRep::Mps;
  const CountMap counts = Engine(config).run_counts(c, 300, 7);
  ASSERT_EQ(counts.size(), 2u);
  const std::string zeros(n, '0');
  const std::string ones(n, '1');
  EXPECT_GT(counts.at(zeros), 0);
  EXPECT_GT(counts.at(ones), 0);
  EXPECT_EQ(counts.at(zeros) + counts.at(ones), 300);
}

TEST(Mps, EngineMidCircuitTrajectoriesOnMps) {
  // Measure-then-reuse: H(0), measure into c0, reset, X, measure into c1.
  Circuit c(2, 2);
  c.h(0);
  c.measure(0, 0);
  c.reset(0);
  c.x(0);
  c.measure(0, 1);
  StateConfig config;
  config.representation = StateRep::Mps;
  const CountMap counts = Engine(config).run_counts(c, 200, 11);
  std::int64_t total = 0;
  for (const auto& [key, n] : counts) {
    EXPECT_EQ(key[0], '1') << key;  // clbit 1 (left) is always 1 after reset+X
    total += n;
  }
  EXPECT_EQ(total, 200);
  EXPECT_EQ(counts.size(), 2u);  // clbit 0 saw both branches
}

TEST(SimStateFactory, DispatchesOnRepresentation) {
  StateConfig config;
  const auto dense = make_sim_state(3, config);
  EXPECT_EQ(std::string(dense->representation()), "statevector");
  config.representation = StateRep::Mps;
  config.mps.max_bond_dim = 7;
  const auto mps = make_sim_state(3, config);
  EXPECT_EQ(std::string(mps->representation()), "mps");
  EXPECT_EQ(static_cast<const Mps&>(*mps).config().max_bond_dim, 7);
}

}  // namespace
}  // namespace quml::sim

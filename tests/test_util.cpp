// Unit tests for util: RNG determinism and statistics, bit helpers,
// rational arithmetic.

#include <gtest/gtest.h>

#include <set>

#include "util/alias_table.hpp"
#include "util/bits.hpp"
#include "util/errors.hpp"
#include "util/rational.hpp"
#include "util/rng.hpp"

namespace quml {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, ZeroSeedWorks) {
  Rng r(0);
  std::set<std::uint64_t> values;
  for (int i = 0; i < 16; ++i) values.insert(r.next_u64());
  EXPECT_EQ(values.size(), 16u);  // splitmix seeding avoids the all-zero state
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng r(99);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(5);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng r(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(r.next_below(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, SplitStreamsAreIndependent) {
  const Rng base(42);
  Rng s0 = base.split(0), s1 = base.split(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (s0.next_u64() == s1.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, SplitIsDeterministic) {
  const Rng base(42);
  Rng a = base.split(3), b = base.split(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, NormalMoments) {
  Rng r(17);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = r.next_normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, SampleCdf) {
  Rng r(3);
  const std::vector<double> cdf{0.1, 0.6, 1.0};
  std::vector<int> histogram(3, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++histogram[r.sample_cdf(cdf)];
  EXPECT_NEAR(histogram[0] / double(n), 0.1, 0.01);
  EXPECT_NEAR(histogram[1] / double(n), 0.5, 0.01);
  EXPECT_NEAR(histogram[2] / double(n), 0.4, 0.01);
}

TEST(Rng, SampleCdfClampsDriftedTail) {
  // Regression: a CDF whose final entry drifted below 1.0 must clamp draws
  // past the tail to the last bucket, never index out of range.
  Rng r(17);
  const std::vector<double> drifted{0.25, 0.5, 0.97};
  for (int i = 0; i < 200000; ++i) {
    const std::size_t idx = r.sample_cdf(drifted);
    ASSERT_LT(idx, drifted.size());
  }
  // An extreme drift (tail at 0.5) funnels half the draws into the clamp.
  const std::vector<double> heavy_drift{0.1, 0.5};
  int clamped = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i)
    if (r.sample_cdf(heavy_drift) == 1) ++clamped;
  EXPECT_NEAR(clamped / double(n), 0.9, 0.02);  // 0.4 in-range + 0.5 clamped
}

TEST(AliasTable, MatchesDistribution) {
  const std::vector<double> weights{1.0, 2.0, 3.0, 4.0};
  AliasTable table(weights);
  Rng r(9);
  std::vector<int> histogram(weights.size(), 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++histogram[table.sample(r)];
  for (std::size_t i = 0; i < weights.size(); ++i)
    EXPECT_NEAR(histogram[i] / double(n), weights[i] / 10.0, 0.01) << i;
}

TEST(AliasTable, DeterministicForSameSeed) {
  const std::vector<double> weights{0.5, 0.1, 0.9, 0.2, 0.3};
  AliasTable table(weights);
  Rng a(4), b(4);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(table.sample(a), table.sample(b));
}

TEST(AliasTable, ClampsNegativeDriftAndRejectsDegenerate) {
  // Tiny negative drift (as produced by parallel reductions) is treated as 0.
  AliasTable table({1.0, -1e-17, 1.0});
  Rng r(2);
  for (int i = 0; i < 10000; ++i) EXPECT_NE(table.sample(r), 1u);
  EXPECT_THROW(AliasTable(std::vector<double>{}), ValidationError);
  EXPECT_THROW(AliasTable({0.0, 0.0}), ValidationError);
  EXPECT_THROW(AliasTable({-1.0}), ValidationError);
  // rebuild() recycles the table's buffers; a failed rebuild keeps the old
  // distribution intact.
  std::vector<double> next{0.0, 1.0, 0.0};
  table.rebuild(next);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(table.sample(r), 1u);
  std::vector<double> degenerate{0.0};
  EXPECT_THROW(table.rebuild(degenerate), ValidationError);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(table.sample(r), 1u);
}

TEST(AliasTable, SingleAndDeterministicWeights) {
  AliasTable one({42.0});
  Rng r(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(one.sample(r), 0u);
  // A delta distribution always lands on the only positive weight.
  AliasTable delta({0.0, 0.0, 5.0, 0.0});
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(delta.sample(r), 2u);
}

TEST(Bits, BitAtAndWithBit) {
  EXPECT_EQ(bit_at(0b1010, 1), 1);
  EXPECT_EQ(bit_at(0b1010, 0), 0);
  EXPECT_EQ(with_bit(0, 3, 1), 0b1000u);
  EXPECT_EQ(with_bit(0b1111, 2, 0), 0b1011u);
}

TEST(Bits, ReverseBits) {
  EXPECT_EQ(reverse_bits(0b0001, 4), 0b1000u);
  EXPECT_EQ(reverse_bits(0b1011, 4), 0b1101u);
  EXPECT_EQ(reverse_bits(0b1, 1), 0b1u);
}

TEST(Bits, ReverseBitsIsInvolution) {
  for (std::uint64_t v = 0; v < 256; ++v) EXPECT_EQ(reverse_bits(reverse_bits(v, 8), 8), v);
}

TEST(Bits, BitstringRoundTrip) {
  EXPECT_EQ(to_bitstring(0b1010, 4), "1010");
  EXPECT_EQ(to_bitstring(5, 4), "0101");
  EXPECT_EQ(from_bitstring("1010"), 0b1010u);
  for (std::uint64_t v = 0; v < 64; ++v) EXPECT_EQ(from_bitstring(to_bitstring(v, 6)), v);
}

TEST(Bits, FromBitstringRejectsGarbage) {
  EXPECT_THROW(from_bitstring("10x1"), ValidationError);
}

TEST(Bits, SignExtend) {
  EXPECT_EQ(sign_extend(0b0111, 4), 7);
  EXPECT_EQ(sign_extend(0b1000, 4), -8);
  EXPECT_EQ(sign_extend(0b1111, 4), -1);
  EXPECT_EQ(sign_extend(0, 4), 0);
}

TEST(Rational, NormalizesSignAndGcd) {
  const Rational r(4, -8);
  EXPECT_EQ(r.num(), -1);
  EXPECT_EQ(r.den(), 2);
}

TEST(Rational, ParseForms) {
  EXPECT_EQ(Rational::parse("1/1024"), Rational(1, 1024));
  EXPECT_EQ(Rational::parse("3"), Rational(3, 1));
  EXPECT_EQ(Rational::parse("-2/4"), Rational(-1, 2));
}

TEST(Rational, ParseRejectsGarbage) {
  EXPECT_THROW(Rational::parse("abc"), ValidationError);
  EXPECT_THROW(Rational::parse("1/0"), ValidationError);
}

TEST(Rational, Arithmetic) {
  EXPECT_EQ(Rational(1, 2) + Rational(1, 3), Rational(5, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_DOUBLE_EQ(Rational(1, 1024).value(), 1.0 / 1024.0);
}

TEST(Rational, CanonicalString) {
  EXPECT_EQ(Rational(1, 1024).str(), "1/1024");
  EXPECT_EQ(Rational(5, 1).str(), "5");
}

}  // namespace
}  // namespace quml

// ExecutionService + registry concurrency suite: alias-collision detection
// (regression: first-match lookup used to let a colliding alias silently
// shadow an engine), async-vs-serial determinism (N client threads x M mixed
// gate/anneal jobs must reproduce serial core::submit bit-for-bit),
// cancellation and failure propagation, job timeouts, "auto" routing with
// queue_wait_us fed live from actual per-backend backlog, and sim::Engine
// re-entrancy under concurrent callers.
//
// This file (and these suites) also run under the ThreadSanitizer CI job
// (cmake --preset tsan; ctest -L svc).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "algolib/ising.hpp"
#include "algolib/qaoa.hpp"
#include "algolib/qft.hpp"
#include "backend/register_backends.hpp"
#include "core/registry.hpp"
#include "sim/engine.hpp"
#include "svc/execution_service.hpp"
#include "util/errors.hpp"

namespace quml {
namespace {

using algolib::Graph;
using namespace std::chrono_literals;

// --- fixtures: job builders -------------------------------------------------

core::JobBundle qft_job(unsigned width, std::uint64_t seed, const std::string& engine,
                        std::int64_t samples = 256) {
  const auto reg = algolib::make_phase_register("p", width);
  core::RegisterSet regs;
  regs.add(reg);
  core::OperatorSequence seq;
  seq.ops.push_back(algolib::qft_descriptor(reg, {}));
  seq.ops.push_back(algolib::measurement_descriptor(reg));
  core::Context ctx;
  ctx.exec.engine = engine;
  ctx.exec.samples = samples;
  ctx.exec.seed = seed;
  return core::JobBundle::package(std::move(regs), std::move(seq), ctx,
                                  "qft" + std::to_string(width) + "-s" + std::to_string(seed));
}

core::JobBundle qaoa_job(int n, std::uint64_t seed, const std::string& engine) {
  const auto reg = algolib::make_ising_register("s", static_cast<unsigned>(n));
  core::RegisterSet regs;
  regs.add(reg);
  core::Context ctx;
  ctx.exec.engine = engine;
  ctx.exec.samples = 512;
  ctx.exec.seed = seed;
  return core::JobBundle::package(
      std::move(regs), algolib::qaoa_sequence(reg, Graph::cycle(n), algolib::ring_p1_angles()),
      ctx, "qaoa" + std::to_string(n) + "-s" + std::to_string(seed));
}

core::JobBundle ising_job(int n, std::uint64_t seed, const std::string& engine) {
  const auto reg = algolib::make_ising_register("s", static_cast<unsigned>(n));
  core::RegisterSet regs;
  regs.add(reg);
  core::OperatorSequence seq;
  seq.ops.push_back(algolib::maxcut_ising_descriptor(reg, Graph::cycle(n)));
  core::Context ctx;
  ctx.exec.engine = engine;
  ctx.exec.samples = 200;
  ctx.exec.seed = seed;
  core::AnnealPolicy anneal;
  anneal.num_reads = 200;
  anneal.num_sweeps = 50;
  ctx.anneal = anneal;
  return core::JobBundle::package(std::move(regs), std::move(seq), ctx,
                                  "ising" + std::to_string(n) + "-s" + std::to_string(seed));
}

/// The mixed workload every determinism test runs: gate + anneal, several
/// widths and seeds, explicit engines (aliases included to cover canonical
/// queue keying).
std::vector<core::JobBundle> mixed_jobs() {
  std::vector<core::JobBundle> jobs;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    jobs.push_back(qft_job(4, seed, "gate.statevector_simulator"));
    jobs.push_back(qft_job(6, seed, "gate.aer_simulator"));  // alias, same pool
    jobs.push_back(qaoa_job(5, seed, "gate.statevector_simulator"));
    jobs.push_back(ising_job(6, seed, "anneal.simulated_annealer"));
  }
  return jobs;
}

// --- fixtures: instrumented test backends ----------------------------------

/// Gate-kind backend that sleeps instead of simulating, advertising more
/// qubits than the real statevector engine can hold so "auto" jobs built
/// wider than the simulator are feasible *only* here.  Two twins (a/b) with
/// identical capabilities let the routing tests observe the live-backlog
/// tiebreak.
class SleepBackend : public core::Backend {
 public:
  SleepBackend(std::string name, std::chrono::milliseconds delay)
      : name_(std::move(name)), delay_(delay) {}

  std::string name() const override { return name_; }

  core::ExecutionResult run(const core::JobBundle& bundle) override {
    std::this_thread::sleep_for(delay_);
    ++runs_;
    core::ExecutionResult result;
    result.counts.add("0", bundle.exec_policy().samples);
    result.metadata.set("engine", json::Value(name_));
    return result;
  }

  json::Value capabilities() const override {
    json::Value caps = json::Value::object();
    caps.set("name", json::Value(name_));
    caps.set("kind", json::Value("gate"));
    caps.set("num_qubits", json::Value(static_cast<std::int64_t>(40)));
    return caps;
  }

  static std::atomic<int> runs_;

 private:
  std::string name_;
  std::chrono::milliseconds delay_;
};

std::atomic<int> SleepBackend::runs_{0};

/// Backend whose run() submits a sub-job through the blocking core::submit
/// wrapper — from a service worker thread that call must execute inline
/// instead of enqueueing (enqueueing onto a pool your own worker blocks is a
/// self-deadlock).
class NestedSubmitBackend : public core::Backend {
 public:
  std::string name() const override { return "gate.svc_nested"; }
  core::ExecutionResult run(const core::JobBundle& bundle) override {
    core::JobBundle inner = bundle;
    inner.context->exec.engine = "gate.statevector_simulator";
    return core::submit(inner);
  }
  json::Value capabilities() const override {
    json::Value caps = json::Value::object();
    caps.set("name", json::Value(name()));
    caps.set("kind", json::Value("gate"));
    caps.set("num_qubits", json::Value(static_cast<std::int64_t>(20)));
    return caps;
  }
};

/// Backend whose run() always throws, for failure-propagation tests.
class FailBackend : public core::Backend {
 public:
  std::string name() const override { return "gate.svc_fail"; }
  core::ExecutionResult run(const core::JobBundle&) override {
    throw LoweringError("svc_fail backend always fails");
  }
  json::Value capabilities() const override {
    json::Value caps = json::Value::object();
    caps.set("name", json::Value(name()));
    caps.set("kind", json::Value("gate"));
    caps.set("num_qubits", json::Value(static_cast<std::int64_t>(40)));
    return caps;
  }
};

/// Gate backend whose factory only works on the thread that registered it.
/// Service-side creations on the submitting thread (the routing capabilities
/// probe, the prepare_sweep probe in submit_sweep) succeed; the per-worker
/// creation in worker_loop runs on a pool thread and throws — modelling an
/// engine whose sessions are exhausted by the time the pool spins up.
/// Advertises 2 qubits so no "auto" job in this suite can route here.
class FlakyFactoryBackend : public core::Backend {
 public:
  std::string name() const override { return "gate.svc_flaky"; }
  core::ExecutionResult run(const core::JobBundle& bundle) override {
    core::ExecutionResult result;
    result.counts.add("0", bundle.exec_policy().samples);
    return result;
  }
  json::Value capabilities() const override {
    json::Value caps = json::Value::object();
    caps.set("name", json::Value(name()));
    caps.set("kind", json::Value("gate"));
    caps.set("num_qubits", json::Value(static_cast<std::int64_t>(2)));
    return caps;
  }
};

std::thread::id g_flaky_home_thread;

/// The registry is process-global, so the instrumented engines are
/// registered exactly once for the whole binary.
void ensure_test_backends() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    auto& registry = core::BackendRegistry::instance();
    registry.register_backend("gate.svc_slow_a",
                              [] { return std::make_unique<SleepBackend>("gate.svc_slow_a", 300ms); });
    registry.register_backend("gate.svc_slow_b",
                              [] { return std::make_unique<SleepBackend>("gate.svc_slow_b", 300ms); });
    registry.register_backend("gate.svc_fail", [] { return std::make_unique<FailBackend>(); });
    registry.register_backend("gate.svc_nested",
                              [] { return std::make_unique<NestedSubmitBackend>(); });
    g_flaky_home_thread = std::this_thread::get_id();
    registry.register_backend("gate.svc_flaky", [] {
      if (std::this_thread::get_id() != g_flaky_home_thread)
        throw BackendError("svc_flaky factory refuses creation off the registering thread");
      return std::make_unique<FlakyFactoryBackend>();
    });
  });
}

class SvcTest : public ::testing::Test {
 protected:
  void SetUp() override {
    backend::register_builtin_backends();
    ensure_test_backends();
  }

  /// A job only the SleepBackend twins can take: wider than the statevector
  /// simulator's advertised capacity, narrower than the twins' 40 qubits.
  static core::JobBundle wide_auto_job(std::uint64_t seed) {
    return qft_job(34, seed, "auto", 16);
  }
};

// --- registry: alias collision regression + thread safety -------------------

TEST(SvcRegistry, RejectsAliasCollidingWithExistingName) {
  backend::register_builtin_backends();
  auto& registry = core::BackendRegistry::instance();
  // Regression: this used to be accepted silently, and first-match lookup
  // would forever resolve the alias to the older engine.
  EXPECT_THROW(registry.register_backend(
                   "gate.svc_collide1", [] { return std::make_unique<FailBackend>(); },
                   {"gate.statevector_simulator"}),
               BackendError);
  // Strong guarantee: the rejected canonical name must not have leaked in.
  EXPECT_FALSE(registry.has("gate.svc_collide1"));
}

TEST(SvcRegistry, RejectsAliasCollidingWithExistingAlias) {
  backend::register_builtin_backends();
  auto& registry = core::BackendRegistry::instance();
  EXPECT_THROW(registry.register_backend(
                   "gate.svc_collide2", [] { return std::make_unique<FailBackend>(); },
                   {"gate.aer_simulator"}),  // alias of the statevector engine
               BackendError);
  EXPECT_FALSE(registry.has("gate.svc_collide2"));
  EXPECT_EQ(registry.canonical("gate.aer_simulator"), "gate.statevector_simulator");
}

TEST(SvcRegistry, RejectsNameCollidingWithExistingAlias) {
  backend::register_builtin_backends();
  auto& registry = core::BackendRegistry::instance();
  EXPECT_THROW(registry.register_backend("gate.aer_simulator",
                                         [] { return std::make_unique<FailBackend>(); }),
               BackendError);
}

TEST(SvcRegistry, RejectsDuplicateAliasesWithinOneRegistration) {
  backend::register_builtin_backends();
  auto& registry = core::BackendRegistry::instance();
  EXPECT_THROW(registry.register_backend(
                   "gate.svc_collide3", [] { return std::make_unique<FailBackend>(); },
                   {"gate.svc_c3_alias", "gate.svc_c3_alias"}),
               BackendError);
  EXPECT_THROW(registry.register_backend(
                   "gate.svc_collide4", [] { return std::make_unique<FailBackend>(); },
                   {"gate.svc_collide4"}),
               BackendError);
  EXPECT_FALSE(registry.has("gate.svc_c3_alias"));
}

TEST(SvcRegistry, CachedCapabilitiesMatchBackendAdvertisement) {
  backend::register_builtin_backends();
  auto& registry = core::BackendRegistry::instance();
  const json::Value direct = registry.create("gate.statevector_simulator")->capabilities();
  const json::Value cached = registry.capabilities("gate.aer_simulator");  // via alias
  EXPECT_EQ(json::dump(cached), json::dump(direct));
  // Second read hits the cache and stays identical.
  EXPECT_EQ(json::dump(registry.capabilities("gate.statevector_simulator")), json::dump(direct));
}

TEST(SvcRegistry, ConcurrentLookupsAndCapabilityProbes) {
  backend::register_builtin_backends();
  auto& registry = core::BackendRegistry::instance();
  std::vector<std::thread> threads;
  std::atomic<int> ok{0};
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        if (registry.has("gate.aer_simulator") &&
            registry.canonical("anneal.neal_simulator") == "anneal.simulated_annealer" &&
            registry.capabilities("gate.statevector_simulator").get_string("kind", "") == "gate")
          ++ok;
      }
    });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(ok.load(), 200);
}

// --- service: determinism --------------------------------------------------

TEST_F(SvcTest, BatchResultsBitIdenticalToSerialSubmit) {
  // Serial baseline through the blocking wrapper.
  std::vector<std::map<std::string, std::int64_t>> serial;
  for (const auto& job : mixed_jobs()) serial.push_back(core::submit(job).counts.map());

  // Async batch across 3 workers per engine: same bundles, same seeds.
  svc::ServiceConfig config;
  config.default_workers = 3;
  svc::ExecutionService service(config);
  const std::vector<svc::JobId> ids = service.submit_batch(mixed_jobs());
  ASSERT_EQ(ids.size(), serial.size());
  for (std::size_t j = 0; j < ids.size(); ++j) {
    const core::ExecutionResult result = service.handle(ids[j]).result();
    EXPECT_EQ(result.counts.map(), serial[j]) << "job " << j << " diverged from serial submit";
  }
}

TEST_F(SvcTest, ConcurrentClientThreadsStayDeterministic) {
  // N client threads submitting into one shared service, each comparing its
  // own jobs against the serial baseline — submission order is racy, results
  // must not be.
  const std::vector<core::JobBundle> jobs = mixed_jobs();
  std::vector<std::map<std::string, std::int64_t>> serial;
  for (const auto& job : jobs) serial.push_back(core::submit(job).counts.map());

  svc::ServiceConfig config;
  config.default_workers = 2;
  svc::ExecutionService service(config);
  constexpr int kThreads = 4;
  std::vector<std::thread> clients;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < kThreads; ++t)
    clients.emplace_back([&, t] {
      for (std::size_t j = static_cast<std::size_t>(t); j < jobs.size(); j += kThreads) {
        const svc::JobId id = service.submit(jobs[j]);
        if (service.handle(id).result().counts.map() != serial[j]) ++mismatches;
      }
    });
  for (auto& client : clients) client.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST_F(SvcTest, SubmitReturnsImmediatelyAndWaitAllDrains) {
  svc::ServiceConfig config;
  config.default_workers = 1;
  svc::ExecutionService service(config);
  std::vector<core::JobBundle> jobs;
  for (std::uint64_t s = 0; s < 4; ++s)
    jobs.push_back(qft_job(10, s, "gate.statevector_simulator", 2048));
  const auto ids = service.submit_batch(std::move(jobs));
  service.wait_all();
  for (const auto id : ids) EXPECT_EQ(service.handle(id).status(), svc::JobStatus::Done);
}

// --- service: lifecycle, cancellation, failures, timeouts -------------------

TEST_F(SvcTest, CancelQueuedJobSkipsExecutionAndPropagates) {
  svc::ServiceConfig config;
  config.default_workers = 1;  // serialize the svc_slow_a pool
  svc::ExecutionService service(config);
  const svc::JobId running = service.submit(qft_job(34, 1, "gate.svc_slow_a", 16));
  const svc::JobId queued = service.submit(qft_job(34, 2, "gate.svc_slow_a", 16));

  const svc::JobHandle victim = service.handle(queued);
  EXPECT_EQ(victim.status(), svc::JobStatus::Queued);
  EXPECT_TRUE(victim.cancel());
  EXPECT_FALSE(victim.cancel());  // already terminal
  EXPECT_EQ(victim.status(), svc::JobStatus::Cancelled);
  EXPECT_THROW(victim.result(), BackendError);

  const svc::JobHandle survivor = service.handle(running);
  EXPECT_NO_THROW(survivor.result());
  EXPECT_EQ(survivor.status(), svc::JobStatus::Done);
  EXPECT_FALSE(survivor.cancel());  // done jobs can't be cancelled
  service.wait_all();
}

TEST_F(SvcTest, FailurePropagatesWithOriginalType) {
  svc::ExecutionService service;
  const svc::JobId id = service.submit(qft_job(34, 7, "gate.svc_fail", 16));
  const svc::JobHandle handle = service.handle(id);
  handle.wait();
  EXPECT_EQ(handle.status(), svc::JobStatus::Failed);
  EXPECT_THROW(handle.result(), LoweringError);  // not just quml::Error
  EXPECT_NE(handle.error().find("svc_fail backend always fails"), std::string::npos);
}

TEST_F(SvcTest, SubmitFailsEarlyOnUnroutableBundles) {
  svc::ExecutionService service;
  EXPECT_THROW(service.submit(qft_job(4, 1, "gate.warp_drive")), BackendError);
  core::JobBundle no_engine = qft_job(4, 1, "gate.statevector_simulator");
  no_engine.context->exec.engine.clear();
  EXPECT_THROW(service.submit(no_engine), BackendError);
}

TEST_F(SvcTest, BatchKeepsGoodJobsWhenOneIsUnroutable) {
  svc::ExecutionService service;
  std::vector<core::JobBundle> jobs;
  jobs.push_back(qft_job(4, 1, "gate.statevector_simulator"));
  jobs.push_back(qft_job(4, 2, "gate.no_such_engine"));
  jobs.push_back(ising_job(6, 3, "anneal.simulated_annealer"));
  const auto ids = service.submit_batch(std::move(jobs));
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_NO_THROW(service.handle(ids[0]).result());
  svc::JobHandle bad = service.handle(ids[1]);
  bad.wait();
  EXPECT_EQ(bad.status(), svc::JobStatus::Failed);
  EXPECT_NE(bad.error().find("unknown engine"), std::string::npos);
  EXPECT_NO_THROW(service.handle(ids[2]).result());
}

TEST_F(SvcTest, WaitForTimesOutOnSlowJobs) {
  svc::ExecutionService service;
  const svc::JobId id = service.submit(qft_job(34, 5, "gate.svc_slow_b", 16));
  const svc::JobHandle handle = service.handle(id);
  EXPECT_FALSE(handle.wait_for(10ms));  // 300ms sleep backend cannot finish
  handle.wait();
  EXPECT_EQ(handle.status(), svc::JobStatus::Done);
  EXPECT_TRUE(handle.wait_for(0ms));  // terminal: returns immediately
}

TEST_F(SvcTest, ForgetReleasesRecordButLiveHandlesSurvive) {
  svc::ServiceConfig config;
  config.default_workers = 1;
  svc::ExecutionService service(config);
  const svc::JobId id = service.submit(qft_job(34, 3, "gate.svc_slow_a", 16));
  const svc::JobHandle handle = service.handle(id);
  service.forget(id);  // while the job is still in flight
  EXPECT_FALSE(service.handle(id).valid());
  EXPECT_NO_THROW(handle.result());  // the obtained handle keeps working
  EXPECT_EQ(handle.status(), svc::JobStatus::Done);
  service.wait_all();
}

TEST_F(SvcTest, NestedCoreSubmitFromWorkerRunsInline) {
  // A backend that itself calls core::submit() must not deadlock even with
  // single-worker pools: from a worker thread the wrapper executes inline.
  const core::JobBundle direct = qft_job(5, 11, "gate.statevector_simulator");
  const std::map<std::string, std::int64_t> expected = core::submit(direct).counts.map();

  svc::ServiceConfig config;
  config.default_workers = 1;
  svc::ExecutionService service(config);
  const svc::JobId id = service.submit(qft_job(5, 11, "gate.svc_nested"));
  const core::ExecutionResult nested = service.handle(id).result();
  EXPECT_EQ(nested.counts.map(), expected);
}

TEST_F(SvcTest, WorkerBackendCreationFailureFailsPlainJob) {
  // The factory for gate.svc_flaky throws on worker threads: the job must
  // settle as FAILED carrying the factory's own error, not hang or crash the
  // worker.
  svc::ExecutionService service;
  // Width 2 fits gate.svc_flaky's advertised capacity, so the job passes
  // admission and the failure happens where this test wants it: in the
  // worker's backend factory.
  const svc::JobId id = service.submit(qft_job(2, 2, "gate.svc_flaky"));
  const svc::JobHandle handle = service.handle(id);
  handle.wait();
  EXPECT_EQ(handle.status(), svc::JobStatus::Failed);
  EXPECT_THROW(handle.result(), BackendError);
  EXPECT_NE(handle.error().find("refuses creation"), std::string::npos) << handle.error();
}

TEST_F(SvcTest, SweepWorkerBackendCreationFailureFailsBindings) {
  // Regression: worker_loop used to wrap backend creation and rec->task in
  // ONE try/catch, so a factory failure skipped the sweep-shard task
  // entirely — shards_live never hit zero, no binding ever settled, and this
  // wait blocked forever.  The fix runs the task with a null backend; the
  // shard records why and the last shard out fails the unclaimed bindings.
  svc::ServiceConfig config;
  config.default_workers = 2;
  svc::ExecutionService service(config);
  const svc::SweepHandle sweep = service.submit_sweep(
      qft_job(2, 3, "gate.svc_flaky"), std::vector<std::vector<double>>(3));
  ASSERT_TRUE(sweep.wait_for(std::chrono::seconds(30))) << "sweep stranded: no shard settled it";
  ASSERT_EQ(sweep.size(), 3u);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    EXPECT_EQ(sweep.status(i), svc::JobStatus::Failed);
    EXPECT_THROW(sweep.result(i), BackendError);
    EXPECT_NE(sweep.error(i).find("could not create backend"), std::string::npos)
        << sweep.error(i);
  }
}

TEST_F(SvcTest, UnknownJobIdYieldsInvalidHandle) {
  svc::ExecutionService service;
  const svc::JobHandle none = service.handle(999999);
  EXPECT_FALSE(none.valid());
  EXPECT_THROW(none.status(), BackendError);
  EXPECT_THROW(none.result(), BackendError);
}

TEST_F(SvcTest, ShutdownDrainsQueuedJobsThenRejectsSubmission) {
  svc::ServiceConfig config;
  config.default_workers = 1;
  auto service = std::make_unique<svc::ExecutionService>(config);
  std::vector<svc::JobId> ids;
  for (std::uint64_t s = 0; s < 3; ++s)
    ids.push_back(service->submit(qft_job(6, s, "gate.statevector_simulator")));
  service->shutdown();  // must finish everything already accepted
  for (const auto id : ids) EXPECT_EQ(service->handle(id).status(), svc::JobStatus::Done);
  EXPECT_THROW(service->submit(qft_job(6, 9, "gate.statevector_simulator")), BackendError);
}

// --- service: "auto" routing with live queue feedback -----------------------

TEST_F(SvcTest, AutoRoutesByKind) {
  svc::ExecutionService service;
  const svc::JobId gate = service.submit(qft_job(4, 1, "auto"));
  const svc::JobId anneal = service.submit(ising_job(6, 1, "auto"));
  // Narrow gate jobs score best on the real simulator (idle, fast, exact);
  // Ising formulations can only route to the annealer.
  EXPECT_EQ(service.handle(gate).engine(), "gate.statevector_simulator");
  EXPECT_EQ(service.handle(anneal).engine(), "anneal.simulated_annealer");
  const auto decision = service.handle(anneal).decision();
  ASSERT_TRUE(decision.has_value());
  EXPECT_EQ(decision->backend, "anneal.simulated_annealer");
  service.wait_all();
}

TEST_F(SvcTest, AutoRoutingFeelsLiveBacklog) {
  // Two idle twins with identical capabilities: the first job lands on twin
  // a (registration order tiebreak).  While it is still running, the next
  // identical job must see a's backlog through queue_wait_us and route to
  // twin b — the closed cost-hint feedback loop in action.
  svc::ServiceConfig config;
  config.default_workers = 1;
  svc::ExecutionService service(config);

  const svc::JobId first = service.submit(wide_auto_job(1));
  EXPECT_EQ(service.handle(first).engine(), "gate.svc_slow_a");
  EXPECT_GT(service.backlog_us("gate.svc_slow_a"), 0.0);

  const svc::JobId second = service.submit(wide_auto_job(2));
  EXPECT_EQ(service.handle(second).engine(), "gate.svc_slow_b");

  // The decision record shows *why*: twin a's estimate now carries its queue.
  const auto decision = service.handle(second).decision();
  ASSERT_TRUE(decision.has_value());
  double duration_a = 0.0, duration_b = 0.0;
  for (const auto& [name, est] : decision->considered) {
    if (name == "gate.svc_slow_a") duration_a = est.duration_us;
    if (name == "gate.svc_slow_b") duration_b = est.duration_us;
  }
  EXPECT_GT(duration_a, duration_b);
  service.wait_all();
  EXPECT_EQ(service.backlog_us("gate.svc_slow_a"), 0.0);
  EXPECT_EQ(service.backlog_us("gate.svc_slow_b"), 0.0);
}

TEST_F(SvcTest, BatchAutoRoutingSpreadsAcrossTwins) {
  // Batch routing is sequential with backlog accumulation: two wide jobs in
  // one batch must not pile onto the same idle twin.
  svc::ServiceConfig config;
  config.default_workers = 1;
  svc::ExecutionService service(config);
  std::vector<core::JobBundle> jobs;
  jobs.push_back(wide_auto_job(11));
  jobs.push_back(wide_auto_job(12));
  const auto ids = service.submit_batch(std::move(jobs));
  const std::string engine0 = service.handle(ids[0]).engine();
  const std::string engine1 = service.handle(ids[1]).engine();
  EXPECT_NE(engine0, engine1);
  service.wait_all();
}

TEST_F(SvcTest, CapabilitySnapshotCarriesLiveQueueWait) {
  svc::ServiceConfig config;
  config.default_workers = 1;
  svc::ExecutionService service(config);
  const svc::JobId id = service.submit(wide_auto_job(21));
  const std::string engine = service.handle(id).engine();
  bool found = false;
  for (const auto& cap : service.capability_snapshot())
    if (cap.name == engine) {
      found = true;
      EXPECT_GT(cap.queue_wait_us, 0.0);
    }
  EXPECT_TRUE(found);
  service.wait_all();
}

// --- batch ordering: JobId <-> result correspondence -------------------------

TEST(SvcBatchOrdering, JobIdsPinResultsUnderConcurrentCancellation) {
  // submit_batch returns ids[i] for bundles[i]; under a concurrent
  // cancellation storm every job that completes must still hand back the
  // result of *its own* bundle (never a neighbour's), and every cancelled
  // job must report CANCELLED.  Each bundle gets a distinct seed, and the
  // result metadata echoes the seed, so a cross-wired id would be caught
  // immediately.
  backend::register_builtin_backends();
  constexpr int kJobs = 24;
  std::vector<core::JobBundle> bundles;
  std::vector<std::uint64_t> seeds;
  for (int i = 0; i < kJobs; ++i) {
    const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(i);
    seeds.push_back(seed);
    bundles.push_back(qft_job(4 + static_cast<unsigned>(i % 3), seed,
                              "gate.statevector_simulator", 64));
  }
  // Serial ground truth per bundle (same engine, same seed).
  std::vector<core::ExecutionResult> expected;
  for (const auto& bundle : bundles) expected.push_back(core::submit(bundle));

  svc::ServiceConfig config;
  config.default_workers = 3;
  svc::ExecutionService service(config);
  const std::vector<svc::JobId> ids = service.submit_batch(bundles);
  // Concurrent cancellation of every third job while the pool drains.
  std::thread canceller([&] {
    for (int i = 0; i < kJobs; i += 3) service.handle(ids[static_cast<std::size_t>(i)]).cancel();
  });
  service.wait_all();
  canceller.join();

  for (int i = 0; i < kJobs; ++i) {
    const svc::JobHandle handle = service.handle(ids[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(handle.valid());
    if (handle.status() == svc::JobStatus::Cancelled) {
      EXPECT_THROW(handle.result(), BackendError);
      continue;
    }
    ASSERT_EQ(handle.status(), svc::JobStatus::Done) << handle.error();
    const core::ExecutionResult result = handle.result();
    // Identity pin: the job's recorded seed and decoded counts are exactly
    // its own bundle's.
    EXPECT_EQ(result.metadata.at("seed").as_int(),
              static_cast<std::int64_t>(seeds[static_cast<std::size_t>(i)]))
        << "job " << i << " returned another bundle's result";
    EXPECT_EQ(result.counts.map(), expected[static_cast<std::size_t>(i)].counts.map())
        << "job " << i;
  }
}

// --- sim: Engine / fusion re-entrancy under concurrency ---------------------

TEST(SvcSimReentrancy, ConcurrentRunCountsAreIdentical) {
  // The Engine is stateless (const run_counts, per-call RNG seeded from the
  // caller): four threads hammering one shared Engine on the same circuit
  // must reproduce the single-threaded counts exactly — this is what lets
  // the service run gate jobs under concurrent workers at all.
  sim::Circuit circuit(5, 5);
  for (int q = 0; q < 5; ++q) circuit.h(q);
  for (int q = 0; q + 1 < 5; ++q) circuit.cx(q, q + 1);
  for (int q = 0; q < 5; ++q) circuit.rz(0.3 * (q + 1), q);
  for (int q = 0; q < 5; ++q) circuit.h(q);
  for (int q = 0; q < 5; ++q) circuit.measure(q, q);

  const sim::Engine engine;
  const sim::CountMap expected = engine.run_counts(circuit, 2048, 1234);
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < 3; ++i)
        if (engine.run_counts(circuit, 2048, 1234) != expected) ++mismatches;
    });
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace quml

// Tests for the gate-model substrate: gate matrices, Euler decomposition,
// circuit IR metrics and inversion, state-vector kernels, gate fusion, shot
// sampling, and mid-circuit measurement trajectories.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdlib>

#include "sim/engine.hpp"
#include "sim/fusion.hpp"
#include "sim/statevector.hpp"
#include "util/errors.hpp"
#include "util/rng.hpp"
#include "util/parallel.hpp"

namespace quml::sim {
namespace {

constexpr double kPi = 3.14159265358979323846;

Mat2 matrix_of(Gate g, std::vector<double> params = {}) {
  return gate_matrix_1q(g, params.data());
}

bool mats_equal(const Mat2& a, const Mat2& b, double tol = 1e-12) {
  return a.approx_equal(b, tol);
}

TEST(GateMatrices, UnitaryProperty) {
  for (const Gate g : {Gate::I, Gate::X, Gate::Y, Gate::Z, Gate::H, Gate::S, Gate::Sdg, Gate::T,
                       Gate::Tdg, Gate::SX, Gate::SXdg}) {
    const Mat2 u = matrix_of(g);
    const Mat2 should_be_identity = u * u.dagger();
    EXPECT_TRUE(mats_equal(should_be_identity, Mat2::identity(), 1e-12))
        << "gate " << gate_name(g);
  }
}

TEST(GateMatrices, KnownIdentities) {
  // H^2 = I, S^2 = Z, T^2 = S, SX^2 = X.
  EXPECT_TRUE(mats_equal(matrix_of(Gate::H) * matrix_of(Gate::H), Mat2::identity()));
  EXPECT_TRUE(mats_equal(matrix_of(Gate::S) * matrix_of(Gate::S), matrix_of(Gate::Z)));
  EXPECT_TRUE(mats_equal(matrix_of(Gate::T) * matrix_of(Gate::T), matrix_of(Gate::S)));
  EXPECT_TRUE(mats_equal(matrix_of(Gate::SX) * matrix_of(Gate::SX), matrix_of(Gate::X)));
}

TEST(GateMatrices, RotationsMatchAxisForms) {
  // RZ(pi) ~ Z, RX(pi) ~ X, RY(pi) ~ Y up to global phase.
  EXPECT_TRUE(matrix_of(Gate::RZ, {kPi}).approx_equal_up_to_phase(matrix_of(Gate::Z)));
  EXPECT_TRUE(matrix_of(Gate::RX, {kPi}).approx_equal_up_to_phase(matrix_of(Gate::X)));
  EXPECT_TRUE(matrix_of(Gate::RY, {kPi}).approx_equal_up_to_phase(matrix_of(Gate::Y)));
  // P(pi/2) = S exactly.
  EXPECT_TRUE(mats_equal(matrix_of(Gate::P, {kPi / 2}), matrix_of(Gate::S)));
}

TEST(GateMatrices, U3Generality) {
  // U3(pi/2, 0, pi) = H.
  EXPECT_TRUE(matrix_of(Gate::U3, {kPi / 2, 0.0, kPi}).approx_equal_up_to_phase(matrix_of(Gate::H)));
}

TEST(GateNames, RoundTrip) {
  for (const Gate g : {Gate::X, Gate::H, Gate::SX, Gate::RZ, Gate::CX, Gate::CP, Gate::SWAP,
                       Gate::CCX, Gate::Measure})
    EXPECT_EQ(gate_from_name(gate_name(g)), g);
  EXPECT_EQ(gate_from_name("cnot"), Gate::CX);
  EXPECT_EQ(gate_from_name("u"), Gate::U3);
  EXPECT_THROW(gate_from_name("frobnicate"), ValidationError);
}

class EulerRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(EulerRoundTrip, ReconstructsUnitary) {
  Rng rng(static_cast<std::uint64_t>(GetParam()));
  // Random unitary via U3 with a random global phase.
  const double theta = rng.next_double() * kPi;
  const double phi = rng.next_double() * 2 * kPi - kPi;
  const double lambda = rng.next_double() * 2 * kPi - kPi;
  const double global = rng.next_double() * 2 * kPi - kPi;
  Mat2 u = matrix_of(Gate::U3, {theta, phi, lambda});
  const c64 phase = std::exp(c64(0, global));
  for (auto& row : u.m)
    for (auto& x : row) x *= phase;

  const Euler e = euler_zyz(u);
  double rz1[] = {e.lambda};
  double ry[] = {e.theta};
  double rz2[] = {e.phi};
  Mat2 rebuilt = gate_matrix_1q(Gate::RZ, rz2) * gate_matrix_1q(Gate::RY, ry) *
                 gate_matrix_1q(Gate::RZ, rz1);
  const c64 g = std::exp(c64(0, e.gamma));
  for (auto& row : rebuilt.m)
    for (auto& x : row) x *= g;
  EXPECT_TRUE(rebuilt.approx_equal(u, 1e-9));
}

INSTANTIATE_TEST_SUITE_P(RandomUnitaries, EulerRoundTrip, ::testing::Range(0, 25));

TEST(EulerEdgeCases, DiagonalAndAntiDiagonal) {
  // Identity, Z (diagonal), X (anti-diagonal) hit the degenerate branches.
  for (const Gate g : {Gate::I, Gate::Z, Gate::X, Gate::S}) {
    const Mat2 u = matrix_of(g);
    const Euler e = euler_zyz(u);
    double rz1[] = {e.lambda};
    double ry[] = {e.theta};
    double rz2[] = {e.phi};
    Mat2 rebuilt = gate_matrix_1q(Gate::RZ, rz2) * gate_matrix_1q(Gate::RY, ry) *
                   gate_matrix_1q(Gate::RZ, rz1);
    const c64 ph = std::exp(c64(0, e.gamma));
    for (auto& row : rebuilt.m)
      for (auto& x : row) x *= ph;
    EXPECT_TRUE(rebuilt.approx_equal(u, 1e-9)) << gate_name(g);
  }
}

TEST(Circuit, BuilderValidation) {
  Circuit c(2, 1);
  EXPECT_THROW(c.h(2), ValidationError);                       // qubit out of range
  EXPECT_THROW(c.cx(0, 0), ValidationError);                   // duplicate operand
  EXPECT_THROW(c.measure(0, 1), ValidationError);              // clbit out of range
  EXPECT_THROW(c.add(Gate::RZ, {0}, {}), ValidationError);     // missing param
  EXPECT_THROW(c.add(Gate::H, {0, 1}), ValidationError);       // wrong arity
  EXPECT_THROW(Circuit(65, 0), ValidationError);               // too wide for any state
  EXPECT_NO_THROW(Circuit(64, 0));  // IR admits the MPS width; dense caps at runtime
}

TEST(Circuit, DepthAndCounts) {
  Circuit c(3, 3);
  c.h(0);
  c.h(1);       // parallel with h(0)
  c.cx(0, 1);   // layer 2
  c.h(2);       // layer 1
  c.cx(1, 2);   // layer 3
  c.measure_all();
  EXPECT_EQ(c.depth(), 4);  // h, cx, cx, measure on the 1-2 chain
  EXPECT_EQ(c.two_qubit_count(), 2);
  EXPECT_EQ(c.count_of(Gate::H), 3);
  EXPECT_EQ(c.size(), 8u);
  const auto counts = c.gate_counts();
  EXPECT_EQ(counts.at("h"), 3);
  EXPECT_EQ(counts.at("cx"), 2);
  EXPECT_EQ(counts.at("measure"), 3);
}

TEST(Circuit, BarrierExcludedFromMetrics) {
  Circuit c(2, 0);
  c.h(0);
  c.barrier();
  c.h(1);
  EXPECT_EQ(c.depth(), 1);
  EXPECT_EQ(c.size(), 2u);
}

TEST(Circuit, InverseUndoesUnitary) {
  Circuit c(3, 0);
  c.h(0);
  c.t(1);
  c.cx(0, 1);
  c.rz(0.37, 2);
  c.cp(1.1, 0, 2);
  c.u3(0.3, -0.2, 0.9, 1);
  c.swap(1, 2);
  Circuit round_trip = c;
  round_trip.append(c.inverse(), {0, 1, 2});
  const Engine engine;
  const Statevector state = engine.run_statevector(round_trip);
  Statevector zero(3);
  EXPECT_NEAR(state.fidelity(zero), 1.0, 1e-9);
}

TEST(Circuit, InverseOfMeasureThrows) {
  Circuit c(1, 1);
  c.measure(0, 0);
  EXPECT_THROW(c.inverse(), ValidationError);
}

TEST(Circuit, AppendWithMapping) {
  Circuit inner(2, 0);
  inner.cx(0, 1);
  Circuit outer(4, 0);
  outer.append(inner, {3, 1});
  ASSERT_EQ(outer.instructions().size(), 1u);
  EXPECT_EQ(outer.instructions()[0].qubits, (std::vector<int>{3, 1}));
  EXPECT_THROW(outer.append(inner, {0}), ValidationError);  // map size mismatch
}

TEST(Statevector, InitialState) {
  const Statevector sv(3);
  EXPECT_EQ(sv.dim(), 8u);
  EXPECT_NEAR(std::abs(sv.amplitude(0)), 1.0, 1e-12);
  EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
}

TEST(Statevector, HadamardCreatesUniform) {
  Circuit c(3, 0);
  for (int q = 0; q < 3; ++q) c.h(q);
  const Engine engine;
  const Statevector sv = engine.run_statevector(c);
  for (std::uint64_t i = 0; i < 8; ++i)
    EXPECT_NEAR(std::abs(sv.amplitude(i)), 1.0 / std::sqrt(8.0), 1e-12);
}

TEST(Statevector, BellState) {
  Circuit c(2, 0);
  c.h(0);
  c.cx(0, 1);
  const Statevector sv = Engine().run_statevector(c);
  EXPECT_NEAR(std::abs(sv.amplitude(0b00)), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(std::abs(sv.amplitude(0b11)), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(std::abs(sv.amplitude(0b01)), 0.0, 1e-12);
  EXPECT_NEAR(sv.expectation_zz(0, 1), 1.0, 1e-12);
  EXPECT_NEAR(sv.expectation_z(0), 0.0, 1e-12);
}

TEST(Statevector, GhzParity) {
  Circuit c(4, 0);
  c.h(0);
  for (int q = 0; q + 1 < 4; ++q) c.cx(q, q + 1);
  const Statevector sv = Engine().run_statevector(c);
  EXPECT_NEAR(std::abs(sv.amplitude(0)), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(std::abs(sv.amplitude(15)), 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(Statevector, SpecializedKernelsMatchGenericMatrix) {
  // Apply each specialized gate and its generic-1q-matrix form; compare.
  for (const Gate g : {Gate::Z, Gate::S, Gate::Sdg, Gate::T, Gate::Tdg}) {
    Circuit prep(2, 0);
    prep.h(0);
    prep.h(1);
    Statevector a = Engine().run_statevector(prep);
    Statevector b = a;
    Instruction inst{g, {1}, {}, {}};
    a.apply(inst);                              // specialized diagonal path
    b.apply_1q(1, gate_matrix_1q(g, nullptr));  // generic path
    EXPECT_NEAR(a.fidelity(b), 1.0, 1e-12) << gate_name(g);
  }
}

TEST(Statevector, CzSymmetric) {
  Circuit c1(2, 0), c2(2, 0);
  c1.h(0);
  c1.h(1);
  c1.cz(0, 1);
  c2.h(0);
  c2.h(1);
  c2.cz(1, 0);
  EXPECT_NEAR(Engine().run_statevector(c1).fidelity(Engine().run_statevector(c2)), 1.0, 1e-12);
}

TEST(Statevector, SwapMovesAmplitude) {
  Circuit c(2, 0);
  c.x(0);
  c.swap(0, 1);
  const Statevector sv = Engine().run_statevector(c);
  EXPECT_NEAR(std::abs(sv.amplitude(0b10)), 1.0, 1e-12);
}

TEST(Statevector, CcxTruthTable) {
  for (std::uint64_t input = 0; input < 8; ++input) {
    Statevector sv(3);
    sv.set_basis_state(input);
    sv.apply_ccx(0, 1, 2);
    const std::uint64_t expected = ((input & 3) == 3) ? (input ^ 4) : input;
    EXPECT_NEAR(std::abs(sv.amplitude(expected)), 1.0, 1e-12) << "input " << input;
  }
}

TEST(Statevector, CswapTruthTable) {
  for (std::uint64_t input = 0; input < 8; ++input) {
    Statevector sv(3);
    sv.set_basis_state(input);
    sv.apply_cswap(0, 1, 2);  // control q0, swap q1 q2
    std::uint64_t expected = input;
    if (input & 1) {
      const std::uint64_t b1 = (input >> 1) & 1, b2 = (input >> 2) & 1;
      expected = (input & 1) | (b2 << 1) | (b1 << 2);
    }
    EXPECT_NEAR(std::abs(sv.amplitude(expected)), 1.0, 1e-12) << "input " << input;
  }
}

TEST(Statevector, RzzPhases) {
  // On |00>: phase e^{-i theta/2}; on |01>: e^{+i theta/2}.
  const double theta = 0.7;
  Statevector sv(2);
  sv.apply_rzz(0, 1, theta);
  EXPECT_NEAR(std::arg(sv.amplitude(0)), -theta / 2, 1e-12);
  sv.set_basis_state(0b01);
  sv.apply_rzz(0, 1, theta);
  EXPECT_NEAR(std::arg(sv.amplitude(0b01)), theta / 2, 1e-12);
}

TEST(Statevector, NormPreservedByRandomCircuit) {
  Rng rng(5);
  Circuit c(5, 0);
  for (int i = 0; i < 60; ++i) {
    const int q = static_cast<int>(rng.next_below(5));
    switch (rng.next_below(5)) {
      case 0: c.h(q); break;
      case 1: c.rz(rng.next_double() * 6, q); break;
      case 2: c.rx(rng.next_double() * 6, q); break;
      case 3: c.cx(q, (q + 1) % 5); break;
      case 4: c.cp(rng.next_double() * 6, q, (q + 2) % 5); break;
    }
  }
  EXPECT_NEAR(Engine().run_statevector(c).norm(), 1.0, 1e-9);
}

TEST(Statevector, ExactPhaseConstants) {
  // unit_phase snaps multiples of pi/2 to exact values.
  EXPECT_EQ(unit_phase(kPi), c64(-1.0, 0.0));
  EXPECT_EQ(unit_phase(-kPi), c64(-1.0, 0.0));
  EXPECT_EQ(unit_phase(kPi / 2), c64(0.0, 1.0));
  EXPECT_EQ(unit_phase(-kPi / 2), c64(0.0, -1.0));
  EXPECT_EQ(unit_phase(0.0), c64(1.0, 0.0));
  // CZ through apply_cp(pi) applies exactly -1: no 1e-16 imaginary residue.
  Statevector sv(2);
  sv.set_basis_state(0b11);
  sv.apply_cp(0, 1, kPi);
  EXPECT_EQ(sv.amplitude(0b11), c64(-1.0, 0.0));
  // ... and applying it twice restores the state exactly.
  sv.apply_cp(0, 1, kPi);
  EXPECT_EQ(sv.amplitude(0b11), c64(1.0, 0.0));
}

TEST(Statevector, QubitCapAndMemoryBudget) {
  EXPECT_THROW(Statevector(Statevector::kMaxQubits + 1), ValidationError);
  EXPECT_THROW(Statevector(-1), ValidationError);
  EXPECT_EQ(Statevector::required_bytes(27), (1ull << 27) * sizeof(c64));
  // With a 1 GiB budget the historical 26-qubit ceiling still constructs but
  // 27 qubits (2 GiB of amplitudes) is refused up front.
  Statevector::set_memory_budget_bytes(1ull << 30);
  EXPECT_THROW(Statevector(27), ValidationError);
  EXPECT_NO_THROW(Statevector(20));
  Statevector::set_memory_budget_bytes(0);  // restore the automatic default
  EXPECT_GE(Statevector::memory_budget_bytes(), 1ull << 30);
}

TEST(Statevector, MemoryBudgetEnvRequiresFullStringParse) {
  // Regression: "4GiB" used to strtoull-parse as a 4-byte budget.  Partial
  // consumption, overflow, and non-positive values must all fall back to the
  // automatic default (>= the 1 GiB floor), while a plain byte count applies.
  Statevector::set_memory_budget_bytes(0);  // route through the env/default path
  const auto with_env = [](const char* value) {
    setenv("QUML_SV_MEMORY_BUDGET_BYTES", value, 1);
    const std::uint64_t budget = Statevector::memory_budget_bytes();
    unsetenv("QUML_SV_MEMORY_BUDGET_BYTES");
    return budget;
  };
  EXPECT_EQ(with_env("2147483648"), 2147483648ull);  // well-formed: applies
  EXPECT_GE(with_env("4GiB"), 1ull << 30);           // trailing junk: default
  EXPECT_GE(with_env("12 "), 1ull << 30);            // trailing space: default
  EXPECT_GE(with_env("99999999999999999999999"), 1ull << 30);  // overflow
  EXPECT_GE(with_env("-4096"), 1ull << 30);          // negative: default
  EXPECT_GE(with_env("0"), 1ull << 30);              // zero budget: default
  EXPECT_GE(with_env(""), 1ull << 30);               // empty: default
}

TEST(Statevector, WideRegisterConstruction) {
  // A 27-qubit register (2 GiB, past the old 26-qubit hard cap) constructs
  // when the budget allows.  28..30 only assert the budget arithmetic — the
  // 16 GiB fill would dominate the whole suite's runtime.
  if (Statevector::required_bytes(27) <= Statevector::memory_budget_bytes()) {
    Statevector sv(27);
    EXPECT_EQ(sv.num_qubits(), 27);
    EXPECT_EQ(sv.dim(), 1ull << 27);
    EXPECT_EQ(sv.amplitude(0), c64(1.0, 0.0));
  }
  for (const int n : {28, 29, 30}) {
    EXPECT_EQ(Statevector::required_bytes(n), sizeof(c64) << n);
    // Under a deliberately small budget every wide width is refused up front
    // (no multi-GiB allocation is attempted), proving the gate is the budget
    // and not the hard cap.
    Statevector::set_memory_budget_bytes(1ull << 30);
    EXPECT_THROW(Statevector{n}, ValidationError);
    Statevector::set_memory_budget_bytes(0);
  }
}

TEST(Statevector, MeasureClampsNearDeterministicProbabilities) {
  // Long diagonal-heavy circuits drift p1 a few ulps past [0, 1]; collapse
  // must clamp and succeed instead of throwing on the legitimate outcome.
  Rng rng(21);
  for (int trial = 0; trial < 20; ++trial) {
    Statevector sv(4);
    sv.apply_1q(0, gate_matrix_1q(Gate::X, nullptr));
    for (int i = 0; i < 200; ++i) {
      sv.apply_diag_1q(i % 4, unit_phase(0.3), unit_phase(-0.7));
      if (i % 3 == 0) sv.apply_rzz(i % 4, (i + 1) % 4, 1.1);
    }
    EXPECT_EQ(sv.measure_collapse(0, rng), 1);  // deterministically |1>
    EXPECT_NEAR(sv.norm(), 1.0, 1e-9);
  }
}

// --- fusion ------------------------------------------------------------------

Circuit random_circuit(std::uint64_t seed, int qubits, int gates, bool with_multiq) {
  Rng rng(seed);
  Circuit c(qubits, 0);
  for (int i = 0; i < gates; ++i) {
    const int q = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(qubits)));
    const int r = (q + 1 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(qubits - 1)))) % qubits;
    switch (rng.next_below(with_multiq ? 14 : 8)) {
      case 0: c.h(q); break;
      case 1: c.x(q); break;
      case 2: c.s(q); break;
      case 3: c.t(q); break;
      case 4: c.rz(rng.next_double() * 6 - 3, q); break;
      case 5: c.rx(rng.next_double() * 6 - 3, q); break;
      case 6: c.p(rng.next_double() * 6 - 3, q); break;
      case 7: c.u3(rng.next_double() * 3, rng.next_double() * 6 - 3, rng.next_double() * 6 - 3, q); break;
      case 8: c.cx(q, r); break;
      case 9: c.cz(q, r); break;
      case 10: c.cp(rng.next_double() * 6 - 3, q, r); break;
      case 11: c.rzz(rng.next_double() * 6 - 3, q, r); break;
      case 12: c.swap(q, r); break;
      case 13: c.ccx(q, r, (r + 1) % qubits == q ? (r + 2) % qubits : (r + 1) % qubits); break;
    }
  }
  return c;
}

/// Gate-by-gate reference path: native kernels, no fusion.
void apply_gate_by_gate(Statevector& sv, const Circuit& c) {
  for (const auto& inst : c.instructions())
    if (inst.gate != Gate::Barrier) sv.apply(inst);
}

class FusionProperty : public ::testing::TestWithParam<int> {};

TEST_P(FusionProperty, FusedMatchesUnfused) {
  const Circuit c = random_circuit(static_cast<std::uint64_t>(GetParam()), 5, 80, true);
  Statevector unfused(5);
  apply_gate_by_gate(unfused, c);
  Statevector fused(5);
  FusionStats stats;
  apply_fused(fused, fuse_unitaries(c, &stats));
  EXPECT_NEAR(unfused.fidelity(fused), 1.0, 1e-9);
  EXPECT_LE(stats.ops_out, c.size());
  // Fusion is exact (no Euler resynthesis), so even amplitudes must agree.
  for (std::uint64_t i = 0; i < unfused.dim(); ++i)
    EXPECT_LT(std::abs(unfused.amplitude(i) - fused.amplitude(i)), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(RandomCircuits, FusionProperty, ::testing::Range(0, 20));

TEST(Fusion, ApplyUnitariesRoutesThroughFusionExactly) {
  // Statevector::apply_unitaries runs the fusion pass; results must stay
  // bit-equivalent (within composition rounding) to the native per-gate path.
  for (const std::uint64_t seed : {101ull, 202ull, 303ull}) {
    const Circuit c = random_circuit(seed, 6, 120, true);
    Statevector direct(6);
    direct.apply_unitaries(c);
    Statevector reference(6);
    apply_gate_by_gate(reference, c);
    for (std::uint64_t i = 0; i < direct.dim(); ++i)
      EXPECT_LT(std::abs(direct.amplitude(i) - reference.amplitude(i)), 1e-12) << "seed " << seed;
  }
}

TEST(Fusion, CollapsesOneQubitRuns) {
  Circuit c(2, 0);
  c.h(0);
  c.t(0);
  c.rx(0.3, 0);
  c.h(1);
  FusionStats stats;
  const auto ops = fuse_unitaries(c, &stats);
  // Three gates on q0 fuse to one op; q1 keeps its own.
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(stats.fused_1q, 4u);
  EXPECT_EQ(ops[0].kind, FusedOp::Kind::Unitary1Q);
  EXPECT_EQ(ops[0].qubit, 0);
  EXPECT_EQ(ops[1].kind, FusedOp::Kind::Unitary1Q);
  EXPECT_EQ(ops[1].qubit, 1);
}

TEST(Fusion, MergesDiagonalRunsIncludingDiagonalTwoQubitGates) {
  // rz; cz; rz on the same wire: the whole run is diagonal, so the pass now
  // absorbs the CZ too and emits a single two-qubit diagonal block.
  Circuit c(2, 0);
  c.rz(0.4, 0);
  c.cz(0, 1);
  c.rz(0.6, 0);
  FusionStats stats;
  const auto ops = fuse_unitaries(c, &stats);
  ASSERT_EQ(ops.size(), 1u);
  EXPECT_EQ(ops[0].kind, FusedOp::Kind::DiagKQ);
  EXPECT_EQ(ops[0].qubits, (std::vector<int>{0, 1}));
  EXPECT_EQ(stats.diag_runs, 1u);
  EXPECT_EQ(stats.fused_multiq, 1u);
  // Semantics preserved despite the merge.
  Statevector a(2), b(2);
  apply_gate_by_gate(a, c);
  apply_fused(b, fuse_unitaries(c));
  for (std::uint64_t i = 0; i < 4; ++i)
    EXPECT_LT(std::abs(a.amplitude(i) - b.amplitude(i)), 1e-12);
}

TEST(Fusion, DiagonalGateCommutesThroughWhenCapsForbidMerging) {
  // With the structured cap forced to 1 no multi-qubit block may form, so the
  // historical v1 behavior re-emerges: the CZ passes through the open
  // diagonal accumulation (they commute) and both rotations still land in a
  // single 1q diagonal.
  Circuit c(2, 0);
  c.rz(0.4, 0);
  c.cz(0, 1);
  c.rz(0.6, 0);
  FusionOptions opt;
  opt.max_qubits = 1;
  opt.max_structured_qubits = 1;
  FusionStats stats;
  const auto ops = fuse_unitaries(c, opt, &stats);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_EQ(ops[0].kind, FusedOp::Kind::Other);  // the cz passes through first
  EXPECT_EQ(ops[1].kind, FusedOp::Kind::Diag1Q);
  EXPECT_EQ(stats.diag_runs, 1u);
  Statevector a(2), b(2);
  apply_gate_by_gate(a, c);
  apply_fused(b, ops);
  for (std::uint64_t i = 0; i < 4; ++i)
    EXPECT_LT(std::abs(a.amplitude(i) - b.amplitude(i)), 1e-12);
}

TEST(Statevector, SwapAndRzzRejectEqualOperandsIdentically) {
  Statevector sv(3);
  EXPECT_THROW(sv.apply_swap(1, 1), ValidationError);
  EXPECT_THROW(sv.apply_rzz(1, 1, 0.3), ValidationError);
  EXPECT_THROW(sv.apply_swap(0, 3), ValidationError);  // out of range still checked
  EXPECT_NO_THROW(sv.apply_swap(0, 2));
  EXPECT_NO_THROW(sv.apply_rzz(0, 2, 0.3));
}

TEST(Fusion, BarrierIsAFence) {
  Circuit c(1, 0);
  c.h(0);
  c.barrier();
  c.h(0);
  const auto ops = fuse_unitaries(c);
  ASSERT_EQ(ops.size(), 2u);  // no fusion across the barrier
  EXPECT_EQ(ops[0].kind, FusedOp::Kind::Unitary1Q);
  EXPECT_EQ(ops[1].kind, FusedOp::Kind::Unitary1Q);
}

TEST(Fusion, RejectsNonUnitaries) {
  Circuit c(1, 1);
  c.h(0);
  c.measure(0, 0);
  EXPECT_THROW(fuse_unitaries(c), ValidationError);
}

TEST(Engine, DeterministicCounts) {
  Circuit c(2, 2);
  c.h(0);
  c.cx(0, 1);
  c.measure_all();
  const Engine engine;
  const CountMap a = engine.run_counts(c, 1000, 7);
  const CountMap b = engine.run_counts(c, 1000, 7);
  EXPECT_EQ(a, b);
  const CountMap other_seed = engine.run_counts(c, 1000, 8);
  EXPECT_NE(a, other_seed);
}

TEST(Engine, BellCountsOnlyCorrelated) {
  Circuit c(2, 2);
  c.h(0);
  c.cx(0, 1);
  c.measure_all();
  const CountMap counts = Engine().run_counts(c, 4096, 42);
  std::int64_t total = 0;
  for (const auto& [key, n] : counts) {
    EXPECT_TRUE(key == "00" || key == "11") << key;
    total += n;
  }
  EXPECT_EQ(total, 4096);
  EXPECT_NEAR(static_cast<double>(counts.at("00")) / 4096.0, 0.5, 0.05);
}

TEST(Engine, DeterministicBasisStateCounts) {
  Circuit c(3, 3);
  c.x(0);
  c.x(2);
  c.measure_all();
  const CountMap counts = Engine().run_counts(c, 100, 1);
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts.at("101"), 100);
}

TEST(Engine, PartialMeasurementMarginals) {
  Circuit c(2, 1);
  c.h(0);
  c.x(1);
  c.measure(1, 0);  // only measure qubit 1
  const CountMap counts = Engine().run_counts(c, 500, 3);
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts.at("1"), 500);
}

TEST(Engine, MidCircuitMeasurementCollapses) {
  // Measure a superposed qubit, then CX onto a fresh qubit: outcomes must be
  // perfectly correlated shot by shot.
  Circuit c(2, 2);
  c.h(0);
  c.measure(0, 0);
  c.cx(0, 1);
  c.measure(1, 1);
  const CountMap counts = Engine().run_counts(c, 2000, 11);
  for (const auto& [key, n] : counts) {
    (void)n;
    EXPECT_TRUE(key == "00" || key == "11") << key;
  }
}

TEST(Engine, MidCircuitPrefixReuseKeepsTrajectoriesIndependent) {
  // A nontrivial unitary prefix before the first measurement is evolved once
  // and copied per shot; outcomes must still be independent across shots and
  // perfectly correlated within one.
  Circuit c(3, 2);
  c.h(0);
  c.t(0);
  c.h(1);
  c.cx(1, 2);
  c.measure(0, 0);
  c.cx(0, 1);  // mid-circuit: forces the trajectory path
  c.measure(0, 1);
  c.z(2);  // trailing unitary after the last measure: unobservable, dropped
  const CountMap counts = Engine().run_counts(c, 4000, 13);
  std::int64_t total = 0;
  for (const auto& [key, n] : counts) {
    EXPECT_TRUE(key == "00" || key == "11") << key;  // same qubit twice
    total += n;
  }
  EXPECT_EQ(total, 4000);
  EXPECT_NEAR(static_cast<double>(counts.at("00")) / 4000.0, 0.5, 0.05);
}

TEST(Engine, ResetReinitializes) {
  Circuit c(1, 1);
  c.x(0);
  c.reset(0);
  c.measure(0, 0);
  const CountMap counts = Engine().run_counts(c, 200, 5);
  ASSERT_EQ(counts.size(), 1u);
  EXPECT_EQ(counts.at("0"), 200);
}

TEST(Engine, ErrorsOnDegenerateInputs) {
  Circuit no_measure(2, 2);
  no_measure.h(0);
  EXPECT_THROW(Engine().run_counts(no_measure, 10, 0), ValidationError);
  Circuit no_clbits(1, 0);
  no_clbits.h(0);
  EXPECT_THROW(Engine().run_counts(no_clbits, 10, 0), ValidationError);
  Circuit ok(1, 1);
  ok.measure(0, 0);
  EXPECT_THROW(Engine().run_counts(ok, 0, 0), ValidationError);
  Circuit with_measure(1, 1);
  with_measure.measure(0, 0);
  EXPECT_THROW(Engine().run_statevector(with_measure), ValidationError);
}

TEST(Engine, ThreadCountDoesNotChangeResults) {
  Circuit c(8, 8);
  for (int q = 0; q < 8; ++q) c.h(q);
  for (int q = 0; q + 1 < 8; ++q) c.cx(q, q + 1);
  c.measure_all();
  quml::set_num_threads(1);
  const CountMap serial = Engine().run_counts(c, 2048, 99);
  quml::set_num_threads(8);
  const CountMap parallel = Engine().run_counts(c, 2048, 99);
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace quml::sim

// Unit + property tests for Quantum Data Type descriptors: every encoding's
// decode/encode pair, bit-order handling, JSON round trips, semantic
// validation.

#include <gtest/gtest.h>

#include "core/qdt.hpp"
#include "util/errors.hpp"

namespace quml::core {
namespace {

QuantumDataType uint_reg(unsigned width, BitOrder order = BitOrder::Lsb0) {
  QuantumDataType q;
  q.id = "x";
  q.width = width;
  q.encoding = EncodingKind::UintRegister;
  q.bit_order = order;
  return q;
}

TEST(Qdt, UintDecodeLsb0) {
  const QuantumDataType q = uint_reg(4);
  EXPECT_EQ(q.decode(0b0110).uint_value, 6u);
  EXPECT_EQ(q.decode(0b0001).uint_value, 1u);  // carrier 0 has weight 1
}

TEST(Qdt, UintDecodeMsb0) {
  const QuantumDataType q = uint_reg(4, BitOrder::Msb0);
  // Carrier 0 is the most significant bit.
  EXPECT_EQ(q.decode(0b0001).uint_value, 8u);
  EXPECT_EQ(q.decode(0b1000).uint_value, 1u);
}

TEST(Qdt, IntDecodeTwosComplement) {
  QuantumDataType q = uint_reg(4);
  q.encoding = EncodingKind::IntRegister;
  q.semantics = MeasurementSemantics::AsInt;
  EXPECT_EQ(q.decode(0b0111).int_value, 7);
  EXPECT_EQ(q.decode(0b1000).int_value, -8);
  EXPECT_EQ(q.decode(0b1111).int_value, -1);
}

TEST(Qdt, BoolDecode) {
  QuantumDataType q = uint_reg(3);
  q.encoding = EncodingKind::BoolRegister;
  q.semantics = MeasurementSemantics::AsBool;
  const TypedValue v = q.decode(0b101);
  ASSERT_EQ(v.bools.size(), 3u);
  EXPECT_TRUE(v.bools[0]);
  EXPECT_FALSE(v.bools[1]);
  EXPECT_TRUE(v.bools[2]);
}

TEST(Qdt, PhaseDecodeUsesScale) {
  QuantumDataType q;
  q.id = "reg_phase";
  q.width = 10;
  q.encoding = EncodingKind::PhaseRegister;
  q.phase_scale = Rational(1, 1024);
  // |512> decodes to half a turn.
  EXPECT_DOUBLE_EQ(q.decode(512).real_value, 0.5);
  EXPECT_DOUBLE_EQ(q.decode(0).real_value, 0.0);
  EXPECT_DOUBLE_EQ(q.decode(256).real_value, 0.25);
}

TEST(Qdt, PhaseDefaultScaleIsOneOverDim) {
  QuantumDataType q;
  q.id = "p";
  q.width = 4;
  q.encoding = EncodingKind::PhaseRegister;
  EXPECT_EQ(q.effective_phase_scale(), Rational(1, 16));
}

TEST(Qdt, SpinDecode) {
  QuantumDataType q;
  q.id = "s";
  q.width = 4;
  q.encoding = EncodingKind::IsingSpin;
  q.semantics = MeasurementSemantics::AsSpin;
  // readout 0 -> +1, readout 1 -> -1.
  const TypedValue v = q.decode(0b1010);
  EXPECT_EQ(v.spins, (std::vector<int>{1, -1, 1, -1}));
}

TEST(Qdt, IsingSpinDefaultsToBoolReadout) {
  QuantumDataType q;
  q.id = "ising_vars";
  q.width = 4;
  q.encoding = EncodingKind::IsingSpin;
  // The paper's Max-Cut register reads out as {0,1} labels (AS_BOOL).
  EXPECT_EQ(q.effective_semantics(), MeasurementSemantics::AsBool);
}

TEST(Qdt, FixedPointDecode) {
  QuantumDataType q;
  q.id = "f";
  q.width = 6;
  q.encoding = EncodingKind::FixedPointRegister;
  q.semantics = MeasurementSemantics::AsFixedPoint;
  q.fraction_bits = 2;
  EXPECT_DOUBLE_EQ(q.decode(0b000110).real_value, 1.5);  // 6 / 4
}

TEST(Qdt, DecodeBitstringUsesMsbFirstKeys) {
  const QuantumDataType q = uint_reg(4);
  // "0110" = carriers (3,2,1,0) = (0,1,1,0) -> basis 0b0110 -> 6.
  EXPECT_EQ(q.decode_bitstring("0110").uint_value, 6u);
  EXPECT_THROW(q.decode_bitstring("011"), ValidationError);
}

class QdtEncodeDecodeRoundTrip : public ::testing::TestWithParam<std::tuple<unsigned, int>> {};

TEST_P(QdtEncodeDecodeRoundTrip, UintIsInverse) {
  const auto [width, order] = GetParam();
  const QuantumDataType q = uint_reg(width, order ? BitOrder::Msb0 : BitOrder::Lsb0);
  for (std::uint64_t basis = 0; basis < (1ull << width); ++basis)
    EXPECT_EQ(q.encode(q.decode(basis)), basis);
}

INSTANTIATE_TEST_SUITE_P(WidthsAndOrders, QdtEncodeDecodeRoundTrip,
                         ::testing::Combine(::testing::Values(1u, 3u, 4u, 8u),
                                            ::testing::Values(0, 1)));

TEST(Qdt, EncodePhase) {
  QuantumDataType q;
  q.id = "p";
  q.width = 10;
  q.encoding = EncodingKind::PhaseRegister;
  q.phase_scale = Rational(1, 1024);
  EXPECT_EQ(q.encode(TypedValue::from_phase(0.5)), 512u);
  EXPECT_THROW(q.encode(TypedValue::from_phase(0.0001)), ValidationError);  // off-grid
  EXPECT_THROW(q.encode(TypedValue::from_phase(2.0)), ValidationError);     // out of range
}

TEST(Qdt, EncodeSpinsAndBools) {
  QuantumDataType q;
  q.id = "s";
  q.width = 4;
  q.encoding = EncodingKind::IsingSpin;
  EXPECT_EQ(q.encode(TypedValue::from_spins({1, -1, 1, -1})), 0b1010u);
  QuantumDataType b = uint_reg(3);
  b.encoding = EncodingKind::BoolRegister;
  EXPECT_EQ(b.encode(TypedValue::from_bools({true, false, true})), 0b101u);
  EXPECT_THROW(q.encode(TypedValue::from_spins({1, -1})), ValidationError);  // width mismatch
}

TEST(Qdt, EncodeRangeChecks) {
  const QuantumDataType q = uint_reg(4);
  EXPECT_THROW(q.encode(TypedValue::from_uint(16)), ValidationError);
  QuantumDataType si = uint_reg(4);
  si.encoding = EncodingKind::IntRegister;
  EXPECT_EQ(si.decode(si.encode(TypedValue::from_int(-3))).uint_value, 0u);  // kind differs
  EXPECT_THROW(si.encode(TypedValue::from_int(8)), ValidationError);
  EXPECT_THROW(si.encode(TypedValue::from_int(-9)), ValidationError);
}

TEST(Qdt, SpinValuesValidated) {
  EXPECT_THROW(TypedValue::from_spins({1, 0}), ValidationError);
}

TEST(Qdt, ValidateRejectsInconsistencies) {
  QuantumDataType q = uint_reg(4);
  q.phase_scale = Rational(1, 16);  // phase_scale on a UINT register
  EXPECT_THROW(q.validate(), ValidationError);

  QuantumDataType w = uint_reg(4);
  w.width = 0;
  EXPECT_THROW(w.validate(), ValidationError);

  QuantumDataType f = uint_reg(4);
  f.encoding = EncodingKind::FixedPointRegister;
  f.fraction_bits = 9;  // more fraction bits than width
  EXPECT_THROW(f.validate(), ValidationError);

  QuantumDataType e = uint_reg(4);
  e.id = "";
  EXPECT_THROW(e.validate(), ValidationError);
}

TEST(Qdt, JsonRoundTripPaperListing2) {
  const json::Value doc = json::parse(R"({
    "$schema": "qdt-core.schema.json",
    "id": "reg_phase",
    "name": "phase",
    "width": 10,
    "encoding_kind": "PHASE_REGISTER",
    "bit_order": "LSB_0",
    "measurement_semantics": "AS_PHASE",
    "phase_scale": "1/1024"
  })");
  const QuantumDataType q = QuantumDataType::from_json(doc);
  EXPECT_EQ(q.id, "reg_phase");
  EXPECT_EQ(q.width, 10u);
  EXPECT_EQ(q.encoding, EncodingKind::PhaseRegister);
  EXPECT_EQ(q.effective_phase_scale(), Rational(1, 1024));
  // to_json -> from_json is the identity on the descriptor.
  EXPECT_EQ(QuantumDataType::from_json(q.to_json()), q);
  // And the emitted JSON carries the schema name.
  EXPECT_EQ(q.to_json().get_string("$schema", ""), "qdt-core.schema.json");
}

TEST(Qdt, FromJsonRejectsSchemaViolations) {
  EXPECT_THROW(QuantumDataType::from_json(json::parse(R"({"id": "x"})")), SchemaError);
  EXPECT_THROW(QuantumDataType::from_json(json::parse(
                   R"({"id": "x", "width": 4, "encoding_kind": "UINT_REGISTER", "bogus": 1})")),
               SchemaError);
}

TEST(Qdt, EnumStringsRoundTrip) {
  for (const auto k :
       {EncodingKind::UintRegister, EncodingKind::IntRegister, EncodingKind::BoolRegister,
        EncodingKind::PhaseRegister, EncodingKind::IsingSpin, EncodingKind::FixedPointRegister})
    EXPECT_EQ(encoding_kind_from_string(to_string(k)), k);
  for (const auto s : {MeasurementSemantics::AsUint, MeasurementSemantics::AsInt,
                       MeasurementSemantics::AsBool, MeasurementSemantics::AsPhase,
                       MeasurementSemantics::AsSpin, MeasurementSemantics::AsFixedPoint})
    EXPECT_EQ(semantics_from_string(to_string(s)), s);
  EXPECT_THROW(encoding_kind_from_string("NOPE"), ValidationError);
  EXPECT_THROW(semantics_from_string("AS_NOPE"), ValidationError);
  EXPECT_THROW(bit_order_from_string("MIDDLE_OUT"), ValidationError);
}

TEST(Qdt, TypedValueStrings) {
  EXPECT_EQ(TypedValue::from_uint(7).str(), "7");
  EXPECT_EQ(TypedValue::from_int(-3).str(), "-3");
  EXPECT_EQ(TypedValue::from_bools({true, false}).str(), "10");
  EXPECT_EQ(TypedValue::from_spins({1, -1}).str(), "+-");
  EXPECT_EQ(TypedValue::from_phase(0.5).str(), "0.5 turn");
}

}  // namespace
}  // namespace quml::core

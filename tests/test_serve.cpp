// quml_serve suite: wire framing (round trips + malformed-frame fuzz),
// persistent job store (replay, torn tail, compaction), weighted fair-share
// queueing, daemon admission/backpressure/tenant isolation, crash recovery
// with bit-identical replay, and the socket server end to end over a unix
// socket in both framings.

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <random>
#include <string>
#include <vector>

#include "algolib/graph.hpp"
#include "algolib/ising.hpp"
#include "algolib/qaoa.hpp"
#include "algolib/qft.hpp"
#include "backend/register_backends.hpp"
#include "core/registry.hpp"
#include "json/json.hpp"
#include "serve/client.hpp"
#include "serve/daemon.hpp"
#include "serve/frame.hpp"
#include "serve/queue.hpp"
#include "serve/server.hpp"
#include "serve/store.hpp"
#include "util/errors.hpp"

namespace quml::serve {
namespace {

using namespace std::chrono_literals;

std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

core::JobBundle qft_job(unsigned width, std::uint64_t seed, std::int64_t samples = 128) {
  return make_load_bundle(width, samples, seed, "gate.statevector_simulator",
                          "qft" + std::to_string(width) + "-s" + std::to_string(seed));
}

/// Packages fine but fails require-bound admission with QA012: a declared
/// free parameter referenced by a descriptor, never bound.
core::JobBundle unbound_param_job() {
  const auto reg = algolib::make_ising_register("s", 4);
  core::RegisterSet regs;
  regs.add(reg);
  core::OperatorSequence seq;
  core::OperatorDescriptor cost =
      algolib::cost_phase_descriptor(reg, algolib::Graph::cycle(4), 0.0);
  cost.params.set("gamma", json::Value("$gamma"));
  seq.ops.push_back(std::move(cost));
  seq.ops.push_back(algolib::measurement_descriptor(reg));
  return core::JobBundle::package(std::move(regs), std::move(seq), std::nullopt, "sweepable",
                                  {"gamma"});
}

// --- frame codec -------------------------------------------------------------

TEST(FrameCodec, NewlineRoundTripAndAutoDetection) {
  const std::string payload = R"({"op":"ping"})";
  const std::string frame = encode_frame(payload, Framing::Newline);
  EXPECT_EQ(frame.back(), '\n');

  FrameDecoder decoder;
  decoder.feed(frame);
  ASSERT_EQ(decoder.framing(), std::nullopt);  // detection happens in next()
  const auto out = decoder.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, payload);
  EXPECT_EQ(decoder.framing(), Framing::Newline);
  EXPECT_TRUE(decoder.idle());
  EXPECT_EQ(decoder.next(), std::nullopt);
}

TEST(FrameCodec, LengthPrefixedRoundTripByteByByte) {
  const std::string payload = R"({"op":"hello","tenant":"a"})";
  const std::string frame = encode_frame(payload, Framing::LengthPrefixed);
  ASSERT_EQ(frame.size(), payload.size() + 4);
  // Big-endian prefix.
  EXPECT_EQ(static_cast<unsigned char>(frame[3]), payload.size());

  FrameDecoder decoder;
  for (std::size_t i = 0; i < frame.size(); ++i) {
    decoder.feed(std::string_view(&frame[i], 1));
    if (i + 1 < frame.size()) {
      EXPECT_EQ(decoder.next(), std::nullopt);
      EXPECT_FALSE(decoder.idle());  // mid-frame: truncation is visible
    }
  }
  const auto out = decoder.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, payload);
  EXPECT_EQ(decoder.framing(), Framing::LengthPrefixed);
  EXPECT_TRUE(decoder.idle());
}

TEST(FrameCodec, MultipleFramesInOneFeed) {
  FrameDecoder decoder;
  decoder.feed(encode_frame(R"({"a":1})", Framing::Newline) +
               encode_frame(R"({"b":2})", Framing::Newline));
  EXPECT_EQ(decoder.next().value(), R"({"a":1})");
  EXPECT_EQ(decoder.next().value(), R"({"b":2})");
  EXPECT_EQ(decoder.next(), std::nullopt);
}

TEST(FrameCodec, CrlfIsTolerated) {
  FrameDecoder decoder;
  decoder.feed("{\"a\":1}\r\n");
  EXPECT_EQ(decoder.next().value(), R"({"a":1})");
}

TEST(FrameCodec, OversizedLengthPrefixRejectedFromHeaderAlone) {
  FrameLimits limits;
  limits.max_frame_bytes = 1024;
  FrameDecoder decoder(limits);
  // 0x40000000 = 1 GiB claimed: must throw before any payload arrives.
  const char header[4] = {0x40, 0x00, 0x00, 0x00};
  decoder.feed(std::string_view(header, 4));
  EXPECT_THROW(decoder.next(), FrameError);
}

TEST(FrameCodec, OversizedNewlineFrameRejected) {
  FrameLimits limits;
  limits.max_frame_bytes = 64;
  FrameDecoder decoder(limits);
  decoder.feed("{" + std::string(200, 'x'));  // no terminator, already too long
  EXPECT_THROW(decoder.next(), FrameError);
}

TEST(FrameCodec, EmptyFramesRejected) {
  {
    FrameDecoder decoder;
    decoder.feed("{\"a\":1}\n\n");  // blank line after a valid frame
    EXPECT_TRUE(decoder.next().has_value());
    EXPECT_THROW(decoder.next(), FrameError);
  }
  {
    FrameDecoder decoder;
    const char header[5] = {0x00, 0x00, 0x00, 0x00, 0x00};  // zero-length prefix
    decoder.feed(std::string_view(header, 5));
    EXPECT_THROW(decoder.next(), FrameError);
  }
  EXPECT_THROW(encode_frame("", Framing::Newline), FrameError);
}

TEST(FrameCodec, InvalidUtf8Rejected) {
  {
    FrameDecoder decoder;
    decoder.feed("{\"k\":\"\xC3\x28\"}\n");  // bad continuation byte
    EXPECT_THROW(decoder.next(), FrameError);
  }
  {
    FrameDecoder decoder;
    std::string frame = encode_frame("x\xE0\x80\x80x", Framing::LengthPrefixed);  // overlong
    decoder.feed(frame);
    EXPECT_THROW(decoder.next(), FrameError);
  }
}

TEST(FrameCodec, Utf8Validator) {
  EXPECT_TRUE(is_valid_utf8("plain ascii"));
  EXPECT_TRUE(is_valid_utf8("caf\xC3\xA9"));                  // é
  EXPECT_TRUE(is_valid_utf8("\xE2\x82\xAC"));                 // €
  EXPECT_TRUE(is_valid_utf8("\xF0\x9F\x9A\x80"));             // rocket
  EXPECT_FALSE(is_valid_utf8("\x80"));                        // stray continuation
  EXPECT_FALSE(is_valid_utf8("\xC3"));                        // truncated sequence
  EXPECT_FALSE(is_valid_utf8("\xC0\xAF"));                    // overlong '/'
  EXPECT_FALSE(is_valid_utf8("\xED\xA0\x80"));                // UTF-16 surrogate
  EXPECT_FALSE(is_valid_utf8("\xF4\x90\x80\x80"));            // past U+10FFFF
  EXPECT_FALSE(is_valid_utf8("\xFE\xFF"));                    // not UTF-8 at all
}

TEST(FrameCodec, FuzzGarbageNeverCrashes) {
  // Seeded garbage: every outcome must be a frame, a wait-for-more, or a
  // FrameError — never a crash or an infinite loop.
  std::mt19937 rng(20260809);
  for (int round = 0; round < 200; ++round) {
    FrameDecoder decoder;
    bool dead = false;
    for (int chunk = 0; chunk < 8 && !dead; ++chunk) {
      std::string bytes(static_cast<std::size_t>(rng() % 64 + 1), '\0');
      for (auto& b : bytes) b = static_cast<char>(rng() & 0xFF);
      decoder.feed(bytes);
      try {
        for (int spin = 0; spin < 128; ++spin) {
          if (!decoder.next().has_value()) break;
        }
      } catch (const FrameError&) {
        dead = true;  // decoder contract: unusable after throwing
      }
    }
  }
}

// --- persistent store --------------------------------------------------------

TEST(JobStore, PersistsAndReplays) {
  const std::string path = temp_path("store_replay.ndjson");
  {
    JobStore store(path);
    EXPECT_EQ(store.next_ticket(), 1u);
    store.append_enqueue({1, "alice", qft_job(3, 11)});
    store.append_enqueue({2, "bob", qft_job(4, 22)});
    store.append_enqueue({3, "alice", qft_job(3, 33)});
    store.append_settle(2, "DONE");
  }
  JobStore reopened(path);
  EXPECT_EQ(reopened.next_ticket(), 4u);
  EXPECT_EQ(reopened.torn_records(), 0u);
  const auto pending = reopened.pending();
  ASSERT_EQ(pending.size(), 2u);
  EXPECT_EQ(pending[0].ticket, 1u);
  EXPECT_EQ(pending[0].tenant, "alice");
  EXPECT_EQ(pending[0].bundle.exec_policy().seed, 11u);
  EXPECT_EQ(pending[1].ticket, 3u);
  EXPECT_EQ(pending[1].bundle.exec_policy().seed, 33u);
}

TEST(JobStore, ToleratesTornTailOnly) {
  const std::string path = temp_path("store_torn.ndjson");
  {
    JobStore store(path);
    store.append_enqueue({1, "alice", qft_job(3, 7)});
  }
  {
    // A crash mid-append leaves a partial record with no newline.
    std::ofstream torn(path, std::ios::app | std::ios::binary);
    torn << R"({"rec":"enqueue","ticket":2,"tenant":"bob","bund)";
  }
  JobStore reopened(path);
  EXPECT_EQ(reopened.torn_records(), 1u);
  ASSERT_EQ(reopened.pending().size(), 1u);
  EXPECT_EQ(reopened.pending()[0].ticket, 1u);
  // The torn ticket was never acknowledged, so reusing its number is fine.
  EXPECT_EQ(reopened.next_ticket(), 2u);

  // Mid-journal corruption is NOT tolerated: that's data loss, not a crash.
  const std::string bad = temp_path("store_corrupt.ndjson");
  {
    std::ofstream out(bad, std::ios::binary);
    out << "this is not json\n";
    out << R"({"rec":"settle","ticket":1,"status":"DONE"})" << "\n";
  }
  EXPECT_THROW(JobStore{bad}, Error);
}

TEST(JobStore, CompactionDropsSettledAndKeepsTicketWatermark) {
  const std::string path = temp_path("store_compact.ndjson");
  {
    JobStore store(path);
    for (std::uint64_t t = 1; t <= 6; ++t) {
      store.append_enqueue({t, "alice", qft_job(3, t)});
    }
    for (std::uint64_t t = 1; t <= 5; ++t) store.append_settle(t, "DONE");
    EXPECT_EQ(store.journal_records(), 11u);
    store.compact();
    EXPECT_EQ(store.settled_records(), 0u);
    EXPECT_EQ(store.journal_records(), 2u);  // watermark + 1 live enqueue
  }
  JobStore reopened(path);
  ASSERT_EQ(reopened.pending().size(), 1u);
  EXPECT_EQ(reopened.pending()[0].ticket, 6u);
  EXPECT_EQ(reopened.next_ticket(), 7u);

  // Even a fully settled journal must not reissue used tickets.
  {
    JobStore store(path);
    store.append_settle(6, "DONE");
    store.compact();
  }
  JobStore empty(path);
  EXPECT_TRUE(empty.pending().empty());
  EXPECT_EQ(empty.next_ticket(), 7u);
}

// --- fair-share queue --------------------------------------------------------

TEST(FairShareQueue, WeightedInterleavingIsExact) {
  FairShareQueue queue;
  queue.set_weight("a", 2.0);
  queue.set_weight("b", 1.0);
  // Tickets encode tenant + order: a -> 100+i, b -> 200+i.
  for (std::uint64_t i = 0; i < 6; ++i) queue.push("a", 100 + i);
  for (std::uint64_t i = 0; i < 6; ++i) queue.push("b", 200 + i);
  EXPECT_EQ(queue.depth("a"), 6u);
  EXPECT_EQ(queue.depth("b"), 6u);

  std::string order;
  std::map<std::string, int> popped;
  for (int i = 0; i < 12; ++i) {
    const auto ticket = queue.try_pop();
    ASSERT_TRUE(ticket.has_value());
    const bool is_a = *ticket < 200;
    order += is_a ? 'a' : 'b';
    ++popped[is_a ? "a" : "b"];
  }
  // Stride scheduling with weights 2:1 and deterministic tie-breaks.
  EXPECT_EQ(order, "abaabaabab" "bb");
  EXPECT_EQ(popped["a"], 6);
  EXPECT_EQ(popped["b"], 6);
  // Within a lane, FIFO order is preserved.
  EXPECT_EQ(queue.try_pop(), std::nullopt);
}

TEST(FairShareQueue, IdleTenantEarnsNoBurstCredit) {
  FairShareQueue queue;
  queue.set_weight("busy", 1.0);
  queue.set_weight("idle", 1.0);
  for (std::uint64_t i = 0; i < 50; ++i) queue.push("busy", i);
  for (int i = 0; i < 40; ++i) ASSERT_TRUE(queue.try_pop().has_value());
  // "idle" arrives late; it must interleave from now on, not monopolize.
  for (std::uint64_t i = 0; i < 5; ++i) queue.push("idle", 1000 + i);
  int idle_run = 0;
  const auto first = queue.try_pop();
  ASSERT_TRUE(first.has_value());
  for (int i = 0; i < 5; ++i) {
    const auto t = queue.try_pop();
    ASSERT_TRUE(t.has_value());
    if (*t >= 1000) {
      ++idle_run;
    }
  }
  EXPECT_LE(idle_run, 3);  // ~alternating, never 5 in a row
}

TEST(FairShareQueue, CloseAbandonsQueuedTickets) {
  FairShareQueue queue;
  queue.push("a", 1);
  queue.push("a", 2);
  queue.close();
  EXPECT_EQ(queue.pop(), std::nullopt);  // immediately, despite backlog
  EXPECT_FALSE(queue.push("a", 3));
}

// --- raw-socket helpers ------------------------------------------------------

int connect_raw(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  // A stuck server must fail the test, not hang the suite.
  timeval tv{30, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

bool send_all(int fd, const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

std::optional<std::string> read_frame(int fd, FrameDecoder& decoder) {
  char buf[4096];
  for (;;) {
    if (auto frame = decoder.next()) return frame;
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) return std::nullopt;
    decoder.feed(std::string_view(buf, static_cast<std::size_t>(n)));
  }
}

// --- daemon ------------------------------------------------------------------

DaemonConfig daemon_config(const std::string& store_name) {
  DaemonConfig config;
  config.store_path = temp_path(store_name);
  config.executors = 2;
  config.service.default_workers = 2;
  return config;
}

TEST(JobDaemon, ExecutesAndSettlesWithServiceParityCounts) {
  JobDaemon daemon(daemon_config("daemon_exec.ndjson"));
  const core::JobBundle bundle = qft_job(3, 91);
  const SubmitReply reply = daemon.submit("alice", bundle);
  ASSERT_EQ(reply.outcome, SubmitOutcome::Accepted) << reply.detail;
  ASSERT_TRUE(daemon.wait_for("alice", reply.ticket, 30000ms));

  const JobInfo info = daemon.info("alice", reply.ticket);
  ASSERT_TRUE(info.known);
  EXPECT_EQ(info.status, "DONE");
  EXPECT_EQ(info.engine, "gate.statevector_simulator");
  ASSERT_TRUE(info.result.has_value());

  // Same bundle through the blocking core API: counts must match exactly.
  const core::ExecutionResult reference = core::submit(bundle);
  EXPECT_EQ(info.result->counts.map(), reference.counts.map());
}

TEST(JobDaemon, RejectsDefectiveBundlesWithQaCodes) {
  JobDaemon daemon(daemon_config("daemon_reject.ndjson"));
  const SubmitReply reply = daemon.submit("alice", unbound_param_job());
  EXPECT_EQ(reply.outcome, SubmitOutcome::Rejected);
  EXPECT_NE(reply.detail.find("QA012"), std::string::npos) << reply.detail;
  const JobDaemon::Stats stats = daemon.stats();
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(stats.accepted, 0u);
}

TEST(JobDaemon, ShedsPastTenantBoundAndPersistsNothingForShedJobs) {
  DaemonConfig config = daemon_config("daemon_shed.ndjson");
  config.start_paused = true;  // nothing drains: the queue depth is exact
  config.default_policy.max_queued = 2;
  std::uint64_t shed_free = 0;
  {
    JobDaemon daemon(config);
    EXPECT_EQ(daemon.submit("alice", qft_job(3, 1)).outcome, SubmitOutcome::Accepted);
    EXPECT_EQ(daemon.submit("alice", qft_job(3, 2)).outcome, SubmitOutcome::Accepted);
    const SubmitReply third = daemon.submit("alice", qft_job(3, 3));
    EXPECT_EQ(third.outcome, SubmitOutcome::Shed);
    EXPECT_NE(third.detail.find("queue is full"), std::string::npos) << third.detail;
    // Bounds are per tenant: bob still has room.
    EXPECT_EQ(daemon.submit("bob", qft_job(3, 4)).outcome, SubmitOutcome::Accepted);
    shed_free = daemon.stats().shed;
    EXPECT_EQ(shed_free, 1u);
  }
  // The shed job never reached the journal.
  JobStore store(config.store_path);
  EXPECT_EQ(store.pending().size(), 3u);
}

TEST(JobDaemon, TenantIsolationHidesForeignTickets) {
  JobDaemon daemon(daemon_config("daemon_isolation.ndjson"));
  const SubmitReply reply = daemon.submit("alice", qft_job(3, 5));
  ASSERT_EQ(reply.outcome, SubmitOutcome::Accepted);
  ASSERT_TRUE(daemon.wait_for("alice", reply.ticket, 30000ms));
  EXPECT_TRUE(daemon.info("alice", reply.ticket).known);
  // A foreign ticket is indistinguishable from a nonexistent one.
  EXPECT_FALSE(daemon.info("bob", reply.ticket).known);
  EXPECT_FALSE(daemon.info("", reply.ticket).known);
}

TEST(JobDaemon, CrashRecoveryReplaysBitIdentically) {
  DaemonConfig config = daemon_config("daemon_recovery.ndjson");
  constexpr int kJobs = 4;
  std::vector<std::uint64_t> tickets;

  // Reference counts for the exact bundles the daemon will replay.  The
  // reference runs before any daemon exists, so register engines here.
  backend::register_builtin_backends();
  std::vector<std::map<std::string, std::int64_t>> reference;
  for (int j = 0; j < kJobs; ++j) {
    reference.push_back(core::submit(qft_job(3, 40 + static_cast<std::uint64_t>(j))).counts.map());
  }

  {
    // Boot paused, enqueue, and die without draining: the "crash".
    DaemonConfig paused = config;
    paused.start_paused = true;
    JobDaemon daemon(paused);
    for (int j = 0; j < kJobs; ++j) {
      const SubmitReply reply =
          daemon.submit("alice", qft_job(3, 40 + static_cast<std::uint64_t>(j)));
      ASSERT_EQ(reply.outcome, SubmitOutcome::Accepted) << reply.detail;
      tickets.push_back(reply.ticket);
    }
    EXPECT_EQ(daemon.stats().settled, 0u);
  }

  // Reboot on the same journal: everything replays under the original
  // tickets and seeds, so results are bit-identical to the reference.
  JobDaemon daemon(config);
  EXPECT_EQ(daemon.stats().replayed, static_cast<std::uint64_t>(kJobs));
  daemon.drain();
  for (int j = 0; j < kJobs; ++j) {
    const JobInfo info = daemon.info("alice", tickets[static_cast<std::size_t>(j)]);
    ASSERT_TRUE(info.known) << "ticket " << tickets[static_cast<std::size_t>(j)];
    ASSERT_EQ(info.status, "DONE") << info.error;
    ASSERT_TRUE(info.result.has_value());
    EXPECT_EQ(info.result->counts.map(), reference[static_cast<std::size_t>(j)])
        << "replayed job " << j << " diverged from its pre-crash counts";
  }
  // Nothing was duplicated: exactly kJobs settled.
  EXPECT_EQ(daemon.stats().settled, static_cast<std::uint64_t>(kJobs));
}

TEST(JobDaemon, QuiesceShedsNewWorkSoDrainIsBounded) {
  JobDaemon daemon(daemon_config("daemon_quiesce.ndjson"));
  const SubmitReply before = daemon.submit("alice", qft_job(3, 61));
  ASSERT_EQ(before.outcome, SubmitOutcome::Accepted) << before.detail;
  daemon.quiesce();
  const SubmitReply after = daemon.submit("alice", qft_job(3, 62));
  EXPECT_EQ(after.outcome, SubmitOutcome::Shed);
  EXPECT_NE(after.detail.find("shutting down"), std::string::npos) << after.detail;
  daemon.drain();  // bounded: waits only on the pre-quiesce backlog
  const JobInfo info = daemon.info("alice", before.ticket);
  ASSERT_TRUE(info.known);
  EXPECT_EQ(info.status, "DONE") << info.error;
  EXPECT_EQ(daemon.stats().shed, 1u);
}

TEST(JobDaemon, SettledRetentionEvictsOldestRecords) {
  DaemonConfig config = daemon_config("daemon_retention.ndjson");
  config.settled_retention = 2;
  JobDaemon daemon(config);
  std::vector<std::uint64_t> tickets;
  for (std::uint64_t j = 0; j < 4; ++j) {
    const SubmitReply reply = daemon.submit("alice", qft_job(3, 70 + j));
    ASSERT_EQ(reply.outcome, SubmitOutcome::Accepted) << reply.detail;
    // Serialize settles so the eviction order is deterministic.
    ASSERT_TRUE(daemon.wait_for("alice", reply.ticket, 30000ms));
    tickets.push_back(reply.ticket);
  }
  // Only the newest `settled_retention` settled records stay queryable; the
  // evicted tickets read as unknown, exactly like foreign ones.
  EXPECT_FALSE(daemon.info("alice", tickets[0]).known);
  EXPECT_FALSE(daemon.info("alice", tickets[1]).known);
  ASSERT_TRUE(daemon.info("alice", tickets[2]).known);
  ASSERT_TRUE(daemon.info("alice", tickets[3]).known);
  EXPECT_TRUE(daemon.info("alice", tickets[3]).result.has_value());
}

// --- server + client over a unix socket --------------------------------------

TEST(ServeWire, EndToEndUnixSocket) {
  JobDaemon daemon(daemon_config("serve_e2e.ndjson"));
  ServerConfig server_config;
  server_config.unix_path = temp_path("serve_e2e.sock");
  Server server(daemon, server_config);
  server.start();

  Client client = Client::connect_unix(server_config.unix_path);
  EXPECT_EQ(client.ping().get_string("op", ""), "pong");

  // Tenant identity is mandatory before any job op.
  EXPECT_EQ(client.status(1).get_string("code", ""), "NO_HELLO");
  ASSERT_TRUE(client.hello("alice").get_bool("ok", false));

  const json::Value accepted = client.submit(qft_job(3, 77));
  ASSERT_TRUE(accepted.get_bool("ok", false)) << json::dump(accepted);
  const auto ticket = static_cast<std::uint64_t>(accepted.get_int("ticket", 0));
  ASSERT_GT(ticket, 0u);

  // result with wait=true blocks server-side until the job settles.
  const json::Value settled = client.result(ticket, /*wait=*/true);
  EXPECT_EQ(settled.get_string("status", ""), "DONE") << json::dump(settled);
  ASSERT_TRUE(settled.contains("counts"));
  EXPECT_EQ(core::Counts::from_json(settled.at("counts")).map(),
            core::submit(qft_job(3, 77)).counts.map());

  const json::Value status = client.status(ticket);
  EXPECT_EQ(status.get_string("status", ""), "DONE");

  // Rejections carry the QA rendering over the wire.
  const json::Value rejected = client.submit(unbound_param_job());
  EXPECT_FALSE(rejected.get_bool("ok", true));
  EXPECT_EQ(rejected.get_string("code", ""), "REJECTED");
  EXPECT_NE(rejected.get_string("detail", "").find("QA012"), std::string::npos);

  // Tenant isolation across sessions.
  Client other = Client::connect_unix(server_config.unix_path);
  other.hello("bob");
  EXPECT_EQ(other.status(ticket).get_string("code", ""), "UNKNOWN_JOB");

  const json::Value stats = client.stats();
  EXPECT_TRUE(stats.get_bool("ok", false));
  EXPECT_GE(stats.get_int("accepted", 0), 1);
  EXPECT_GE(stats.get_int("sessions", 0), 2);

  server.stop();
}

TEST(ServeWire, LengthPrefixedSessionWorks) {
  JobDaemon daemon(daemon_config("serve_lp.ndjson"));
  ServerConfig server_config;
  server_config.unix_path = temp_path("serve_lp.sock");
  Server server(daemon, server_config);
  server.start();

  Client client =
      Client::connect_unix(server_config.unix_path, Framing::LengthPrefixed);
  ASSERT_TRUE(client.hello("alice").get_bool("ok", false));
  EXPECT_EQ(client.hello("alice").get_string("framing", ""), "length-prefixed");
  const json::Value accepted = client.submit(qft_job(3, 55));
  ASSERT_TRUE(accepted.get_bool("ok", false)) << json::dump(accepted);
  const json::Value settled =
      client.result(static_cast<std::uint64_t>(accepted.get_int("ticket", 0)), true);
  EXPECT_EQ(settled.get_string("status", ""), "DONE");
  server.stop();
}

TEST(ServeWire, MalformedFramesCloseTheConnection) {
  JobDaemon daemon(daemon_config("serve_malformed.ndjson"));
  ServerConfig server_config;
  server_config.unix_path = temp_path("serve_malformed.sock");
  server_config.limits.max_frame_bytes = 1024;
  Server server(daemon, server_config);
  server.start();

  // Raw socket: claim a 256 MiB frame.  The server must answer BAD_FRAME
  // (best effort) and close, never buffer toward the hostile length.
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  std::strncpy(addr.sun_path, server_config.unix_path.c_str(), sizeof(addr.sun_path) - 1);
  ASSERT_EQ(::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)), 0);
  const unsigned char hostile[4] = {0x10, 0x00, 0x00, 0x00};
  ASSERT_EQ(::send(fd, hostile, 4, MSG_NOSIGNAL), 4);

  std::string response;
  char buf[512];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) break;  // server closed after flushing its answer
    response.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  EXPECT_NE(response.find("BAD_FRAME"), std::string::npos) << response;

  // The daemon survives hostile clients; a well-formed session still works.
  Client client = Client::connect_unix(server_config.unix_path);
  EXPECT_EQ(client.ping().get_string("op", ""), "pong");
  server.stop();
}

TEST(ServeWire, HalfCloseClientStillReceivesItsReplies) {
  JobDaemon daemon(daemon_config("serve_halfclose.ndjson"));
  ServerConfig server_config;
  server_config.unix_path = temp_path("serve_halfclose.sock");
  Server server(daemon, server_config);
  server.start();

  const int fd = connect_raw(server_config.unix_path);
  ASSERT_GE(fd, 0);
  json::Value hello = json::Value::object();
  hello.set("op", "hello");
  hello.set("tenant", "alice");
  json::Value submit = json::Value::object();
  submit.set("op", "submit");
  submit.set("bundle", qft_job(3, 99).to_json());
  ASSERT_TRUE(send_all(fd, encode_frame(json::dump(hello), Framing::Newline) +
                               encode_frame(json::dump(submit), Framing::Newline)));
  // shutdown(SHUT_WR) right after the writes: the job is accepted and
  // persisted, so the ticket must still arrive on the open read side.
  ASSERT_EQ(::shutdown(fd, SHUT_WR), 0);

  FrameDecoder decoder;
  const auto hello_reply = read_frame(fd, decoder);
  ASSERT_TRUE(hello_reply.has_value());
  EXPECT_TRUE(json::parse(*hello_reply).get_bool("ok", false)) << *hello_reply;
  const auto submit_reply = read_frame(fd, decoder);
  ASSERT_TRUE(submit_reply.has_value());
  const json::Value ack = json::parse(*submit_reply);
  EXPECT_TRUE(ack.get_bool("ok", false)) << json::dump(ack);
  EXPECT_GT(ack.get_int("ticket", 0), 0);
  ::close(fd);
  server.stop();
}

TEST(ServeWire, OversizedResultAnsweredWithoutKillingTheDaemon) {
  DaemonConfig daemon_cfg = daemon_config("serve_oversized.ndjson");
  daemon_cfg.start_paused = true;  // the result request parks before any settle
  JobDaemon daemon(daemon_cfg);
  ServerConfig server_config;
  server_config.unix_path = temp_path("serve_oversized.sock");
  server_config.limits.max_frame_bytes = 4096;
  Server server(daemon, server_config);
  server.start();

  // 10 qubits x 8192 shots: ~1024 distinct counts, far past the 4 KiB frame
  // limit once rendered, while every request stays well under it.
  Client client = Client::connect_unix(server_config.unix_path);
  ASSERT_TRUE(client.hello("alice").get_bool("ok", false));
  const json::Value accepted = client.submit(qft_job(10, 7, 8192));
  ASSERT_TRUE(accepted.get_bool("ok", false)) << json::dump(accepted);
  const auto ticket = static_cast<std::uint64_t>(accepted.get_int("ticket", 0));

  // Park a wait=true result request on a raw session, then let the job run:
  // the settle path must substitute a ticket-bearing error for the unframable
  // counts instead of throwing on the poll thread.
  const int fd = connect_raw(server_config.unix_path);
  ASSERT_GE(fd, 0);
  json::Value hello = json::Value::object();
  hello.set("op", "hello");
  hello.set("tenant", "alice");
  json::Value wait_req = json::Value::object();
  wait_req.set("op", "result");
  wait_req.set("ticket", ticket);
  wait_req.set("wait", true);
  ASSERT_TRUE(send_all(fd, encode_frame(json::dump(hello), Framing::Newline) +
                               encode_frame(json::dump(wait_req), Framing::Newline)));
  FrameDecoder decoder;
  ASSERT_TRUE(read_frame(fd, decoder).has_value());  // hello ack: waiter is parked
  daemon.resume();
  const auto deferred = read_frame(fd, decoder);
  ASSERT_TRUE(deferred.has_value());
  const json::Value waited = json::parse(*deferred);
  EXPECT_FALSE(waited.get_bool("ok", true));
  EXPECT_EQ(waited.get_string("code", ""), "OVERSIZED_RESPONSE") << json::dump(waited);
  EXPECT_EQ(static_cast<std::uint64_t>(waited.get_int("ticket", 0)), ticket);
  EXPECT_EQ(waited.get_string("status", ""), "DONE");
  ::close(fd);

  // The inline (already-settled) path substitutes the same bounded error.
  const json::Value inline_reply = client.result(ticket, /*wait=*/false);
  EXPECT_FALSE(inline_reply.get_bool("ok", true));
  EXPECT_EQ(inline_reply.get_string("code", ""), "OVERSIZED_RESPONSE")
      << json::dump(inline_reply);
  // The poll thread survived: small responses still flow on every session.
  EXPECT_EQ(client.status(ticket).get_string("status", ""), "DONE");
  EXPECT_EQ(client.ping().get_string("op", ""), "pong");
  server.stop();
}

TEST(ServeWire, PipelinedBacklogIsThrottledWithoutLosingReplies) {
  JobDaemon daemon(daemon_config("serve_backlog.ndjson"));
  ServerConfig server_config;
  server_config.unix_path = temp_path("serve_backlog.sock");
  server_config.max_outbuf_bytes = 256;  // a handful of pongs
  Server server(daemon, server_config);
  server.start();

  const int fd = connect_raw(server_config.unix_path);
  ASSERT_GE(fd, 0);
  constexpr int kPings = 1000;
  std::string burst;
  for (int i = 0; i < kPings; ++i) burst += encode_frame(R"({"op":"ping"})", Framing::Newline);
  ASSERT_TRUE(send_all(fd, burst));

  // Every ping gets its pong even though the outbuf cap repeatedly pauses
  // decoding: parked frames resume as the client drains its responses.
  FrameDecoder decoder;
  for (int i = 0; i < kPings; ++i) {
    const auto pong = read_frame(fd, decoder);
    ASSERT_TRUE(pong.has_value()) << "stream ended after " << i << " pongs";
    EXPECT_NE(pong->find("pong"), std::string::npos) << *pong;
  }
  ::close(fd);
  server.stop();
}

}  // namespace
}  // namespace quml::serve

// Tests for the annealing substrate: Ising/QUBO models and conversions,
// beta schedules, the Metropolis annealer (ground states, determinism,
// thread independence), greedy descent, and the exact solver.

#include <gtest/gtest.h>

#include <cmath>

#include "anneal/sampler.hpp"
#include "util/errors.hpp"
#include "util/rng.hpp"
#include "util/parallel.hpp"

namespace quml::anneal {
namespace {

IsingModel ring4() {
  IsingModel m(4);
  m.add_coupling(0, 1, 1.0);
  m.add_coupling(1, 2, 1.0);
  m.add_coupling(2, 3, 1.0);
  m.add_coupling(3, 0, 1.0);
  return m;
}

TEST(IsingModel, EnergyEvaluation) {
  const IsingModel m = ring4();
  // Alternating spins anti-align every edge: E = -4.
  EXPECT_DOUBLE_EQ(m.energy({1, -1, 1, -1}), -4.0);
  EXPECT_DOUBLE_EQ(m.energy({-1, 1, -1, 1}), -4.0);
  // Aligned spins: E = +4.
  EXPECT_DOUBLE_EQ(m.energy({1, 1, 1, 1}), 4.0);
  // One flip from aligned: two edges change sign: E = 0.
  EXPECT_DOUBLE_EQ(m.energy({-1, 1, 1, 1}), 0.0);
}

TEST(IsingModel, FieldsContribute) {
  IsingModel m(2);
  m.set_field(0, 0.5);
  m.set_field(1, -1.5);
  m.add_coupling(0, 1, 2.0);
  EXPECT_DOUBLE_EQ(m.energy({1, 1}), 0.5 - 1.5 + 2.0);
  EXPECT_DOUBLE_EQ(m.energy({-1, 1}), -0.5 - 1.5 - 2.0);
}

TEST(IsingModel, FlipDeltaMatchesBruteForce) {
  IsingModel m(3);
  m.set_field(0, 0.3);
  m.add_coupling(0, 1, -1.2);
  m.add_coupling(1, 2, 0.7);
  Spins s{1, -1, 1};
  for (int i = 0; i < 3; ++i) {
    Spins flipped = s;
    flipped[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(-flipped[static_cast<std::size_t>(i)]);
    EXPECT_NEAR(m.flip_delta(s, i), m.energy(flipped) - m.energy(s), 1e-12);
  }
}

TEST(IsingModel, CouplingAccumulates) {
  IsingModel m(2);
  m.add_coupling(0, 1, 1.0);
  m.add_coupling(1, 0, 0.5);  // reversed order accumulates into the same term
  EXPECT_EQ(m.couplings.size(), 1u);
  EXPECT_DOUBLE_EQ(m.energy({1, 1}), 1.5);
  EXPECT_DOUBLE_EQ(m.flip_delta({1, 1}, 0), -3.0);
}

TEST(IsingModel, Validation) {
  IsingModel m(2);
  EXPECT_THROW(m.add_coupling(0, 0, 1.0), ValidationError);
  EXPECT_THROW(m.add_coupling(0, 5, 1.0), ValidationError);
  EXPECT_THROW(m.set_field(7, 1.0), ValidationError);
  EXPECT_THROW(m.energy({1}), ValidationError);
}

TEST(IsingModel, JsonRoundTrip) {
  IsingModel m = ring4();
  m.set_field(2, -0.5);
  const IsingModel back = IsingModel::from_json(m.to_json());
  EXPECT_EQ(back.num_spins(), 4);
  EXPECT_DOUBLE_EQ(back.energy({1, -1, 1, -1}), m.energy({1, -1, 1, -1}));
  EXPECT_DOUBLE_EQ(back.energy({1, 1, 1, 1}), m.energy({1, 1, 1, 1}));
}

TEST(QuboIsing, ConversionPreservesEnergyLandscape) {
  QuboModel qubo(3);
  qubo.add(0, 0, -1.0);
  qubo.add(1, 1, 2.0);
  qubo.add(0, 1, -3.0);
  qubo.add(1, 2, 1.5);
  double offset = 0.0;
  const IsingModel ising = IsingModel::from_qubo(qubo, &offset);
  for (int word = 0; word < 8; ++word) {
    std::vector<std::int8_t> x(3), s(3);
    for (int i = 0; i < 3; ++i) {
      x[static_cast<std::size_t>(i)] = static_cast<std::int8_t>((word >> i) & 1);
      s[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(x[static_cast<std::size_t>(i)] ? 1 : -1);
    }
    EXPECT_NEAR(qubo.energy(x), ising.energy(s) + offset, 1e-12) << "word " << word;
  }
}

TEST(QuboIsing, RoundTripThroughBothDirections) {
  IsingModel ising(3);
  ising.set_field(0, 0.4);
  ising.add_coupling(0, 2, -1.1);
  ising.add_coupling(1, 2, 0.9);
  double to_qubo_offset = 0.0, back_offset = 0.0;
  const QuboModel qubo = QuboModel::from_ising(ising, &to_qubo_offset);
  const IsingModel back = IsingModel::from_qubo(qubo, &back_offset);
  for (int word = 0; word < 8; ++word) {
    std::vector<std::int8_t> s(3);
    for (int i = 0; i < 3; ++i)
      s[static_cast<std::size_t>(i)] = static_cast<std::int8_t>(((word >> i) & 1) ? 1 : -1);
    EXPECT_NEAR(back.energy(s) + back_offset + to_qubo_offset, ising.energy(s), 1e-12);
  }
}

TEST(Schedule, AutoRangeIsSane) {
  const IsingModel m = ring4();
  AnnealParams params;
  params.num_sweeps = 100;
  const auto betas = SimulatedAnnealer::beta_schedule(m, params);
  ASSERT_EQ(betas.size(), 100u);
  // Hot end: ln(2)/max_field = ln(2)/2 for the ring (degree 2, unit J).
  EXPECT_NEAR(betas.front(), std::log(2.0) / 2.0, 1e-12);
  EXPECT_NEAR(betas.back(), std::log(100.0) / 2.0, 1e-12);
  for (std::size_t i = 1; i < betas.size(); ++i) EXPECT_GE(betas[i], betas[i - 1]);
}

TEST(Schedule, GeometricVsLinearShape) {
  const IsingModel m = ring4();
  AnnealParams geo;
  geo.num_sweeps = 11;
  geo.beta_min = 0.1;
  geo.beta_max = 10.0;
  AnnealParams lin = geo;
  lin.schedule = Schedule::Linear;
  const auto g = SimulatedAnnealer::beta_schedule(m, geo);
  const auto l = SimulatedAnnealer::beta_schedule(m, lin);
  EXPECT_NEAR(g[5], 1.0, 1e-9);          // geometric midpoint = sqrt(0.1*10)
  EXPECT_NEAR(l[5], 5.05, 1e-9);         // linear midpoint
  EXPECT_NEAR(g.front(), l.front(), 1e-12);
  EXPECT_NEAR(g.back(), l.back(), 1e-12);
}

TEST(Schedule, InvalidRangesRejected) {
  const IsingModel m = ring4();
  AnnealParams bad;
  bad.beta_min = 5.0;
  bad.beta_max = 1.0;
  EXPECT_THROW(SimulatedAnnealer::beta_schedule(m, bad), ValidationError);
  AnnealParams zero;
  zero.num_sweeps = 0;
  EXPECT_THROW(SimulatedAnnealer::beta_schedule(m, zero), ValidationError);
}

TEST(Annealer, FindsRing4GroundStates) {
  AnnealParams params;
  params.num_reads = 200;
  params.num_sweeps = 200;
  params.seed = 42;
  const SampleSet set = SimulatedAnnealer().sample(ring4(), params);
  EXPECT_DOUBLE_EQ(set.lowest().energy, -4.0);
  // Both optimal strings appear (paper: "1010" and "0101").
  bool seen_1010 = false, seen_0101 = false;
  for (const auto& s : set.samples()) {
    if (s.energy == -4.0 && s.bitstring() == "1010") seen_1010 = true;
    if (s.energy == -4.0 && s.bitstring() == "0101") seen_0101 = true;
  }
  EXPECT_TRUE(seen_1010);
  EXPECT_TRUE(seen_0101);
  EXPECT_GT(set.ground_fraction(), 0.5);
}

TEST(Annealer, DeterministicForSeed) {
  AnnealParams params;
  params.num_reads = 50;
  params.num_sweeps = 50;
  params.seed = 7;
  const SampleSet a = SimulatedAnnealer().sample(ring4(), params);
  const SampleSet b = SimulatedAnnealer().sample(ring4(), params);
  ASSERT_EQ(a.samples().size(), b.samples().size());
  for (std::size_t i = 0; i < a.samples().size(); ++i) {
    EXPECT_EQ(a.samples()[i].spins, b.samples()[i].spins);
    EXPECT_EQ(a.samples()[i].occurrences, b.samples()[i].occurrences);
  }
}

TEST(Annealer, ThreadCountDoesNotChangeResults) {
  AnnealParams params;
  params.num_reads = 64;
  params.num_sweeps = 64;
  params.seed = 13;
  quml::set_num_threads(1);
  const SampleSet serial = SimulatedAnnealer().sample(ring4(), params);
  quml::set_num_threads(8);
  const SampleSet parallel = SimulatedAnnealer().sample(ring4(), params);
  ASSERT_EQ(serial.samples().size(), parallel.samples().size());
  for (std::size_t i = 0; i < serial.samples().size(); ++i)
    EXPECT_EQ(serial.samples()[i].spins, parallel.samples()[i].spins);
}

TEST(Annealer, FrustratedTriangleGroundEnergy) {
  // Antiferromagnetic triangle: cannot satisfy all edges; E_min = -1.
  IsingModel m(3);
  m.add_coupling(0, 1, 1.0);
  m.add_coupling(1, 2, 1.0);
  m.add_coupling(2, 0, 1.0);
  AnnealParams params;
  params.num_reads = 100;
  params.num_sweeps = 100;
  const SampleSet set = SimulatedAnnealer().sample(m, params);
  EXPECT_DOUBLE_EQ(set.lowest().energy, -1.0);
}

TEST(Annealer, FieldsBreakDegeneracy) {
  IsingModel m(2);
  m.set_field(0, -1.0);  // prefers s0 = +1
  m.add_coupling(0, 1, -0.5);  // ferromagnetic: s1 follows s0
  AnnealParams params;
  params.num_reads = 100;
  params.num_sweeps = 100;
  const SampleSet set = SimulatedAnnealer().sample(m, params);
  EXPECT_EQ(set.lowest().spins, (Spins{1, 1}));
  EXPECT_DOUBLE_EQ(set.lowest().energy, -1.5);
}

TEST(Annealer, MoreSweepsNeverHurtOnAverage) {
  // EXP-ANNEAL shape: ground fraction grows (weakly) with sweeps.
  IsingModel m(8);
  for (int i = 0; i < 8; ++i) m.add_coupling(i, (i + 1) % 8, 1.0);
  AnnealParams quick;
  quick.num_reads = 200;
  quick.num_sweeps = 1;
  quick.seed = 3;
  AnnealParams thorough = quick;
  thorough.num_sweeps = 200;
  const double quick_fraction = SimulatedAnnealer().sample(m, quick).ground_fraction();
  const double thorough_fraction = SimulatedAnnealer().sample(m, thorough).ground_fraction();
  EXPECT_GT(thorough_fraction, quick_fraction);
  EXPECT_GT(thorough_fraction, 0.9);
}

TEST(Annealer, ParameterValidation) {
  AnnealParams params;
  params.num_reads = 0;
  EXPECT_THROW(SimulatedAnnealer().sample(ring4(), params), ValidationError);
  EXPECT_THROW(SimulatedAnnealer().sample(IsingModel(0), AnnealParams{}), ValidationError);
}

TEST(SampleSet, AggregationAndStats) {
  SampleSet set;
  set.insert({1, -1}, -1.0);
  set.insert({1, -1}, -1.0);
  set.insert({-1, 1}, -1.0);
  set.insert({1, 1}, 3.0);
  set.finalize();
  EXPECT_EQ(set.samples().size(), 3u);
  EXPECT_EQ(set.total_reads(), 4);
  EXPECT_DOUBLE_EQ(set.lowest().energy, -1.0);
  // Duplicates merged: the {1,-1} configuration appears once with 2 reads.
  for (const auto& s : set.samples()) {
    if (s.spins == Spins{1, -1}) {
      EXPECT_EQ(s.occurrences, 2);
    }
  }
  EXPECT_DOUBLE_EQ(set.mean_energy(), (-1.0 * 3 + 3.0) / 4.0);
  EXPECT_DOUBLE_EQ(set.ground_fraction(), 0.75);
}

TEST(SampleSet, BitstringConvention) {
  Sample s;
  s.spins = {1, -1, 1, -1};  // spin +1 -> '0', rendered MSB-first
  EXPECT_EQ(s.bitstring(), "1010");
  s.spins = {-1, 1, -1, 1};
  EXPECT_EQ(s.bitstring(), "0101");
}

TEST(GreedyDescent, ReachesLocalMinimum) {
  const SampleSet set = greedy_descent(ring4(), 50, 21);
  // Every edge-satisfiable instance: greedy on the 4-ring always reaches -4
  // or a 0-energy local minimum; the best read must be the ground state.
  EXPECT_DOUBLE_EQ(set.lowest().energy, -4.0);
}

TEST(ExactSolver, EnumeratesAllGroundStates) {
  const SampleSet set = exact_ground_states(ring4());
  ASSERT_EQ(set.samples().size(), 2u);
  EXPECT_DOUBLE_EQ(set.lowest().energy, -4.0);
  EXPECT_EQ(set.samples()[0].bitstring(), "0101");
  EXPECT_EQ(set.samples()[1].bitstring(), "1010");
}

TEST(ExactSolver, MatchesAnnealerOnRandomInstance) {
  IsingModel m(10);
  Rng rng(77);
  for (int i = 0; i < 10; ++i)
    for (int j = i + 1; j < 10; ++j)
      if (rng.next_double() < 0.4)
        m.add_coupling(i, j, rng.next_double() * 2.0 - 1.0);
  for (int i = 0; i < 10; ++i) m.set_field(i, rng.next_double() - 0.5);
  const SampleSet exact = exact_ground_states(m);
  AnnealParams params;
  params.num_reads = 300;
  params.num_sweeps = 300;
  const SampleSet annealed = SimulatedAnnealer().sample(m, params);
  EXPECT_NEAR(annealed.lowest().energy, exact.lowest().energy, 1e-9);
}

TEST(ExactSolver, RejectsOversizedInstances) {
  EXPECT_THROW(exact_ground_states(IsingModel(25)), ValidationError);
}

}  // namespace
}  // namespace quml::anneal

// Tests for the QEC context service: surface-code resource model, distance
// selection, patch allocation, logical gate-set checks, and the
// repetition-code Monte Carlo that validates exponential error suppression.

#include <gtest/gtest.h>

#include <cmath>

#include "qec/repetition.hpp"
#include "qec/surface.hpp"
#include "util/errors.hpp"

namespace quml::qec {
namespace {

TEST(SurfaceModel, PhysicalQubitsPerPatch) {
  EXPECT_EQ(SurfaceCodeModel::physical_qubits_per_patch(3), 17);
  EXPECT_EQ(SurfaceCodeModel::physical_qubits_per_patch(7), 97);   // paper Listing 5 distance
  EXPECT_EQ(SurfaceCodeModel::physical_qubits_per_patch(11), 241);
  EXPECT_THROW(SurfaceCodeModel::physical_qubits_per_patch(4), ValidationError);
  EXPECT_THROW(SurfaceCodeModel::physical_qubits_per_patch(1), ValidationError);
}

TEST(SurfaceModel, LogicalErrorDecreasesWithDistance) {
  const SurfaceCodeModel model;
  const double p = 1e-3;
  double previous = 1.0;
  for (int d = 3; d <= 13; d += 2) {
    const double rate = model.logical_error_per_round(p, d);
    EXPECT_LT(rate, previous);
    previous = rate;
  }
}

TEST(SurfaceModel, SuppressionFactorIsPOverPth) {
  const SurfaceCodeModel model;
  const double p = 1.1e-3;  // p/p_th = 0.1
  // Each distance step of 2 multiplies the exponent by one: ratio = 0.1.
  const double r3 = model.logical_error_per_round(p, 3);
  const double r5 = model.logical_error_per_round(p, 5);
  EXPECT_NEAR(r5 / r3, 0.1, 1e-9);
}

TEST(SurfaceModel, ChooseDistanceMeetsBudget) {
  const SurfaceCodeModel model;
  const int d = model.choose_distance(1e-3, 1000, 4, 1e-9);
  EXPECT_GE(d, 3);
  EXPECT_EQ(d % 2, 1);
  EXPECT_LT(model.logical_error_per_round(1e-3, d) * 1000 * 4, 1e-9);
  // The next smaller distance must NOT meet the budget (minimality).
  if (d > 3) {
    EXPECT_GE(model.logical_error_per_round(1e-3, d - 2) * 1000 * 4, 1e-9);
  }
}

TEST(SurfaceModel, AboveThresholdRejected) {
  const SurfaceCodeModel model;
  EXPECT_THROW(model.choose_distance(0.02, 100, 1, 1e-6), BackendError);
}

TEST(PatchAllocation, LinearAndGridLayouts) {
  const PatchLayout linear = allocate_patches(4, 3, "linear");
  EXPECT_EQ(linear.rows, 1);
  EXPECT_EQ(linear.cols, 4);
  EXPECT_EQ(linear.total_physical_qubits, 4 * 17);  // no routing lanes, one row

  const PatchLayout grid = allocate_patches(9, 3, "auto");
  EXPECT_EQ(grid.rows, 3);
  EXPECT_EQ(grid.cols, 3);
  EXPECT_GT(grid.total_physical_qubits, 9 * 17);  // lanes between rows
  EXPECT_EQ(grid.patch_origin.size(), 9u);
  EXPECT_THROW(allocate_patches(4, 3, "hilbert"), ValidationError);
  EXPECT_THROW(allocate_patches(0, 3, "auto"), ValidationError);
}

TEST(ResourceEstimate, PaperListing5Policy) {
  // surface, distance 7, allocator auto on a 4-qubit logical program.
  core::QecPolicy policy;
  policy.code_family = "surface";
  policy.distance = 7;
  policy.allocator = "auto";
  policy.physical_error_rate = 1e-3;
  std::map<std::string, std::int64_t> gates{{"h", 4}, {"cx", 8}, {"measure", 4}};
  const QecResourceEstimate est = estimate_resources(policy, 4, 10, gates);
  EXPECT_EQ(est.distance, 7);
  EXPECT_EQ(est.patches, 4);
  EXPECT_EQ(est.syndrome_rounds, 70);  // depth 10 * distance 7
  EXPECT_GE(est.physical_qubits, 4 * 97);
  EXPECT_EQ(est.t_count, 0);  // Clifford-only program needs no magic states
  EXPECT_EQ(est.t_factory_qubits, 0);
  EXPECT_GT(est.runtime_us, 0.0);
  EXPECT_GT(est.logical_error_per_round, 0.0);
  EXPECT_LT(est.total_failure_probability, 1.0);
}

TEST(ResourceEstimate, RotationsPricedInTGates) {
  core::QecPolicy policy;
  policy.distance = 7;
  std::map<std::string, std::int64_t> gates{{"rz", 3}, {"t", 2}};
  const QecResourceEstimate est = estimate_resources(policy, 2, 5, gates);
  EXPECT_EQ(est.t_count, 3 * 100 + 2);
  EXPECT_GT(est.t_factory_qubits, 0);
}

TEST(ResourceEstimate, TargetRateOverridesDistance) {
  core::QecPolicy policy;
  policy.distance = 3;
  policy.physical_error_rate = 1e-3;
  policy.target_logical_error_rate = 1e-12;
  const QecResourceEstimate est =
      estimate_resources(policy, 2, 100, {{"h", 2}, {"cx", 1}});
  EXPECT_GT(est.distance, 3);  // d=3 cannot reach 1e-12 over 100 rounds
}

TEST(ResourceEstimate, UnsupportedFamilyRejected) {
  core::QecPolicy policy;
  policy.code_family = "color";
  EXPECT_THROW(estimate_resources(policy, 1, 1, {}), BackendError);
}

TEST(LogicalGateSet, PaperListing5SetAcceptsClifford) {
  core::QecPolicy policy;
  policy.logical_gate_set = {"H", "S", "CNOT", "T", "MEASURE_Z"};
  EXPECT_NO_THROW(check_logical_gate_set(
      policy, {{"h", 4}, {"s", 2}, {"cx", 8}, {"t", 1}, {"rz", 3}, {"measure", 4}, {"x", 2}}));
}

TEST(LogicalGateSet, RejectsOutsideGates) {
  core::QecPolicy policy;
  policy.logical_gate_set = {"H", "CNOT", "MEASURE_Z"};  // no T
  EXPECT_THROW(check_logical_gate_set(policy, {{"t", 1}}), BackendError);
  EXPECT_THROW(check_logical_gate_set(policy, {{"rz", 1}}), BackendError);
}

TEST(LogicalGateSet, EmptySetIsUnrestricted) {
  core::QecPolicy policy;
  EXPECT_NO_THROW(check_logical_gate_set(policy, {{"t", 100}}));
}

TEST(Repetition, AnalyticKnownValues) {
  // d=3, p=0.1: P(>=2 flips) = 3*0.01*0.9 + 0.001 = 0.028.
  EXPECT_NEAR(repetition_logical_error_analytic(3, 0.1), 0.028, 1e-12);
  // d=1 is just p.
  EXPECT_NEAR(repetition_logical_error_analytic(1, 0.3), 0.3, 1e-12);
  // p=0 never fails; p=1 always fails.
  EXPECT_DOUBLE_EQ(repetition_logical_error_analytic(5, 0.0), 0.0);
  EXPECT_NEAR(repetition_logical_error_analytic(5, 1.0), 1.0, 1e-9);
}

TEST(Repetition, MonteCarloMatchesAnalytic) {
  for (const int d : {3, 5, 7}) {
    const double analytic = repetition_logical_error_analytic(d, 0.2);
    const double mc = repetition_logical_error_mc(d, 0.2, 200000, 42);
    EXPECT_NEAR(mc, analytic, 0.005) << "d=" << d;
  }
}

TEST(Repetition, ExponentialSuppressionBelowHalf) {
  // The property the surface model assumes: below threshold (p < 1/2 here),
  // error falls multiplicatively with distance.
  const double p = 0.05;
  double previous = 1.0;
  for (const int d : {3, 5, 7, 9}) {
    const double rate = repetition_logical_error_analytic(d, p);
    EXPECT_LT(rate, previous * 0.5);
    previous = rate;
  }
}

TEST(Repetition, MonteCarloDeterministicInSeed) {
  EXPECT_DOUBLE_EQ(repetition_logical_error_mc(5, 0.1, 10000, 7),
                   repetition_logical_error_mc(5, 0.1, 10000, 7));
}

TEST(Repetition, Validation) {
  EXPECT_THROW(repetition_logical_error_analytic(2, 0.1), ValidationError);
  EXPECT_THROW(repetition_logical_error_analytic(3, 1.5), ValidationError);
  EXPECT_THROW(repetition_logical_error_mc(3, 0.1, 0, 1), ValidationError);
}

}  // namespace
}  // namespace quml::qec

// Tests for the extension features: two-register Draper adder, GHZ / W
// state preparation, and the OpenQASM 3 exporter.

#include <gtest/gtest.h>

#include <cmath>

#include "algolib/arithmetic.hpp"
#include "algolib/phase.hpp"
#include "algolib/qft.hpp"
#include "algolib/stateprep.hpp"
#include "backend/lowering.hpp"
#include "backend/register_backends.hpp"
#include "core/registry.hpp"
#include "sim/engine.hpp"
#include "sim/qasm.hpp"
#include "util/errors.hpp"
#include "util/rng.hpp"

namespace quml {
namespace {

class ExtensionsTest : public ::testing::Test {
 protected:
  void SetUp() override { backend::register_builtin_backends(); }

  static core::Context gate_ctx(std::int64_t samples = 128) {
    core::Context ctx;
    ctx.exec.engine = "gate.statevector_simulator";
    ctx.exec.samples = samples;
    ctx.exec.seed = 3;
    return ctx;
  }
};

// --- two-register adder --------------------------------------------------------

class RegisterAdderSweep : public ExtensionsTest,
                           public ::testing::WithParamInterface<std::tuple<int, int>> {};

TEST_P(RegisterAdderSweep, AddsSourceIntoTarget) {
  const auto [a, b] = GetParam();
  const core::QuantumDataType src = algolib::make_uint_register("a", 3);
  const core::QuantumDataType dst = algolib::make_uint_register("b", 3);
  core::RegisterSet regs;
  regs.add(src);
  regs.add(dst);
  core::OperatorSequence seq;
  seq.ops.push_back(algolib::basis_state_prep_descriptor(
      src, core::TypedValue::from_uint(static_cast<std::uint64_t>(a))));
  seq.ops.push_back(algolib::basis_state_prep_descriptor(
      dst, core::TypedValue::from_uint(static_cast<std::uint64_t>(b))));
  seq.ops.push_back(algolib::adder_register_descriptor(dst, src));
  seq.ops.push_back(algolib::measurement_descriptor(dst));
  const auto result =
      core::submit(core::JobBundle::package(std::move(regs), std::move(seq), gate_ctx()));
  EXPECT_EQ(result.decoded[0].value.uint_value, static_cast<std::uint64_t>((a + b) % 8))
      << "a=" << a << " b=" << b;
}

INSTANTIATE_TEST_SUITE_P(Sweep, RegisterAdderSweep,
                         ::testing::Combine(::testing::Values(0, 1, 3, 7),
                                            ::testing::Values(0, 2, 5, 7)));

TEST_F(ExtensionsTest, RegisterAdderLeavesSourceIntact) {
  const core::QuantumDataType src = algolib::make_uint_register("a", 3);
  const core::QuantumDataType dst = algolib::make_uint_register("b", 3);
  core::RegisterSet regs;
  regs.add(src);
  regs.add(dst);
  core::OperatorSequence seq;
  seq.ops.push_back(algolib::basis_state_prep_descriptor(src, core::TypedValue::from_uint(5)));
  seq.ops.push_back(algolib::adder_register_descriptor(dst, src));
  seq.ops.push_back(algolib::measurement_descriptor(src));
  const auto result =
      core::submit(core::JobBundle::package(std::move(regs), std::move(seq), gate_ctx()));
  EXPECT_EQ(result.decoded[0].value.uint_value, 5u);
}

TEST_F(ExtensionsTest, RegisterSubtractInverts) {
  const core::QuantumDataType src = algolib::make_uint_register("a", 4);
  const core::QuantumDataType dst = algolib::make_uint_register("b", 4);
  core::RegisterSet regs;
  regs.add(src);
  regs.add(dst);
  core::OperatorSequence seq;
  seq.ops.push_back(algolib::basis_state_prep_descriptor(src, core::TypedValue::from_uint(6)));
  seq.ops.push_back(algolib::basis_state_prep_descriptor(dst, core::TypedValue::from_uint(9)));
  seq.ops.push_back(algolib::adder_register_descriptor(dst, src, /*subtract=*/true));
  seq.ops.push_back(algolib::measurement_descriptor(dst));
  const auto result =
      core::submit(core::JobBundle::package(std::move(regs), std::move(seq), gate_ctx()));
  EXPECT_EQ(result.decoded[0].value.uint_value, 3u);  // 9 - 6
}

TEST_F(ExtensionsTest, NarrowSourceIsAllowedWiderIsNot) {
  const core::QuantumDataType narrow = algolib::make_uint_register("a", 2);
  const core::QuantumDataType wide = algolib::make_uint_register("b", 4);
  EXPECT_NO_THROW(algolib::adder_register_descriptor(wide, narrow));
  EXPECT_THROW(algolib::adder_register_descriptor(narrow, wide), ValidationError);
  EXPECT_THROW(algolib::adder_register_descriptor(wide, wide), ValidationError);
}

TEST_F(ExtensionsTest, RegisterAdderInversionRule) {
  const core::QuantumDataType src = algolib::make_uint_register("a", 3);
  const core::QuantumDataType dst = algolib::make_uint_register("b", 3);
  const core::OperatorDescriptor add = algolib::adder_register_descriptor(dst, src);
  const core::OperatorDescriptor inv = core::invert_operator(add);
  EXPECT_TRUE(inv.param_bool("subtract", false));
}

// --- GHZ / W preparation --------------------------------------------------------

TEST_F(ExtensionsTest, GhzAmplitudes) {
  const core::QuantumDataType reg = algolib::make_uint_register("g", 4);
  core::RegisterSet regs;
  regs.add(reg);
  const backend::QubitResolver resolver(regs);
  sim::Circuit c(4, 0);
  backend::LoweringRegistry::instance().lower(algolib::ghz_prep_descriptor(reg), resolver, c);
  const sim::Statevector sv = sim::Engine().run_statevector(c);
  EXPECT_NEAR(std::abs(sv.amplitude(0b0000)), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(std::abs(sv.amplitude(0b1111)), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(std::abs(sv.amplitude(0b0101)), 0.0, 1e-12);
}

class WPrepWidths : public ExtensionsTest, public ::testing::WithParamInterface<int> {};

TEST_P(WPrepWidths, OneHotEqualSuperposition) {
  const int n = GetParam();
  const core::QuantumDataType reg =
      algolib::make_uint_register("w", static_cast<unsigned>(n));
  core::RegisterSet regs;
  regs.add(reg);
  const backend::QubitResolver resolver(regs);
  sim::Circuit c(n, 0);
  backend::LoweringRegistry::instance().lower(algolib::w_prep_descriptor(reg), resolver, c);
  const sim::Statevector sv = sim::Engine().run_statevector(c);
  const double expect = 1.0 / std::sqrt(static_cast<double>(n));
  for (std::uint64_t idx = 0; idx < sv.dim(); ++idx) {
    const bool one_hot = idx != 0 && (idx & (idx - 1)) == 0;
    EXPECT_NEAR(std::abs(sv.amplitude(idx)), one_hot ? expect : 0.0, 1e-9)
        << "n=" << n << " idx=" << idx;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, WPrepWidths, ::testing::Values(2, 3, 5, 8));

TEST_F(ExtensionsTest, StatePrepsRejectWidthOne) {
  const core::QuantumDataType tiny = algolib::make_flag_register("t");
  EXPECT_THROW(algolib::ghz_prep_descriptor(tiny), ValidationError);
  EXPECT_THROW(algolib::w_prep_descriptor(tiny), ValidationError);
}

TEST_F(ExtensionsTest, GhzThroughBackendCounts) {
  const core::QuantumDataType reg = algolib::make_uint_register("g", 5);
  core::RegisterSet regs;
  regs.add(reg);
  core::OperatorSequence seq;
  seq.ops.push_back(algolib::ghz_prep_descriptor(reg));
  seq.ops.push_back(algolib::measurement_descriptor(reg));
  const auto result =
      core::submit(core::JobBundle::package(std::move(regs), std::move(seq), gate_ctx(4096)));
  EXPECT_EQ(result.counts.map().size(), 2u);
  EXPECT_NEAR(result.counts.probability("00000"), 0.5, 0.05);
  EXPECT_NEAR(result.counts.probability("11111"), 0.5, 0.05);
}

// --- OpenQASM 3 export -----------------------------------------------------------

TEST_F(ExtensionsTest, QasmHeaderAndDeclarations) {
  sim::Circuit c(3, 2);
  c.h(0);
  c.measure(0, 1);
  const std::string qasm = sim::to_qasm3(c, "unit test");
  EXPECT_NE(qasm.find("// unit test"), std::string::npos);
  EXPECT_NE(qasm.find("OPENQASM 3.0;"), std::string::npos);
  EXPECT_NE(qasm.find("include \"stdgates.inc\";"), std::string::npos);
  EXPECT_NE(qasm.find("qubit[3] q;"), std::string::npos);
  EXPECT_NE(qasm.find("bit[2] c;"), std::string::npos);
  EXPECT_NE(qasm.find("h q[0];"), std::string::npos);
  EXPECT_NE(qasm.find("c[1] = measure q[0];"), std::string::npos);
}

TEST_F(ExtensionsTest, QasmGateSpellings) {
  sim::Circuit c(2, 0);
  c.rz(0.5, 0);
  c.sx(1);
  c.sxdg(1);
  c.cx(0, 1);
  c.cp(1.25, 0, 1);
  c.rzz(0.75, 0, 1);
  c.barrier();
  c.u3(0.1, 0.2, 0.3, 0);
  const std::string qasm = sim::to_qasm3(c);
  EXPECT_NE(qasm.find("rz(0.5) q[0];"), std::string::npos);
  EXPECT_NE(qasm.find("sx q[1];"), std::string::npos);
  // sxdg and rzz are not in stdgates.inc: the exporter emits local gate
  // definitions so the instruction stream round-trips 1:1 through
  // sim::from_qasm3 instead of inlining decompositions at every use site.
  EXPECT_NE(qasm.find("gate sxdg a { inv @ sx a; }"), std::string::npos);
  EXPECT_NE(qasm.find("sxdg q[1];"), std::string::npos);
  EXPECT_NE(qasm.find("gate rzz(theta) a, b { cx a, b; rz(theta) b; cx a, b; }"),
            std::string::npos);
  EXPECT_NE(qasm.find("rzz(0.75) q[0], q[1];"), std::string::npos);
  EXPECT_NE(qasm.find("cx q[0], q[1];"), std::string::npos);
  EXPECT_NE(qasm.find("cp(1.25) q[0], q[1];"), std::string::npos);
  EXPECT_NE(qasm.find("barrier q;"), std::string::npos);
  EXPECT_NE(qasm.find("u3(0.1, 0.2, 0.3) q[0];"), std::string::npos);
  // And the emitted program parses back to the identical instruction stream.
  EXPECT_EQ(sim::from_qasm3(qasm).instructions(), c.instructions());
}

TEST_F(ExtensionsTest, QasmExportThroughBackendMetadata) {
  const core::QuantumDataType reg = algolib::make_uint_register("g", 3);
  core::Context ctx = gate_ctx(64);
  ctx.exec.target.basis_gates = {"sx", "rz", "cx"};
  ctx.exec.options.set("emit_qasm3", json::Value(true));
  core::RegisterSet regs;
  regs.add(reg);
  core::OperatorSequence seq;
  seq.ops.push_back(algolib::ghz_prep_descriptor(reg));
  seq.ops.push_back(algolib::measurement_descriptor(reg));
  const auto result = core::submit(core::JobBundle::package(std::move(regs), std::move(seq), ctx));
  const std::string qasm = result.metadata.get_string("qasm3", "");
  ASSERT_FALSE(qasm.empty());
  EXPECT_NE(qasm.find("OPENQASM 3.0;"), std::string::npos);
  // Transpiled to the basis: only sx/rz/cx (plus measures) appear.
  EXPECT_EQ(qasm.find("h q["), std::string::npos);
  EXPECT_NE(qasm.find("cx q["), std::string::npos);
  EXPECT_NE(qasm.find("measure"), std::string::npos);
}


// --- amplitude encoding -----------------------------------------------------------

class AmplitudeEncodingWidths : public ExtensionsTest,
                                public ::testing::WithParamInterface<int> {};

TEST_P(AmplitudeEncodingWidths, PreparesRandomNonNegativeVectors) {
  const int n = GetParam();
  Rng rng(static_cast<std::uint64_t>(100 + n));
  std::vector<double> v(1ull << n);
  for (auto& x : v) x = rng.next_double();
  const core::QuantumDataType reg =
      algolib::make_uint_register("v", static_cast<unsigned>(n));
  const core::OperatorDescriptor op = algolib::amplitude_encoding_descriptor(reg, v);
  core::RegisterSet regs;
  regs.add(reg);
  const backend::QubitResolver resolver(regs);
  sim::Circuit c(n, 0);
  backend::LoweringRegistry::instance().lower(op, resolver, c);
  const sim::Statevector sv = sim::Engine().run_statevector(c);
  double norm = 0.0;
  for (const double x : v) norm += x * x;
  norm = std::sqrt(norm);
  for (std::uint64_t k = 0; k < sv.dim(); ++k)
    EXPECT_NEAR(std::abs(sv.amplitude(k)), v[k] / norm, 1e-9) << "n=" << n << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(Widths, AmplitudeEncodingWidths, ::testing::Values(1, 2, 3, 4, 5));

TEST_F(ExtensionsTest, AmplitudeEncodingSparseVector) {
  // Branch pruning: vectors with zero branches still prepare exactly.
  const core::QuantumDataType reg = algolib::make_uint_register("v", 3);
  std::vector<double> v(8, 0.0);
  v[1] = 3.0;
  v[6] = 4.0;  // normalized: 0.6, 0.8
  const core::OperatorDescriptor op = algolib::amplitude_encoding_descriptor(reg, v);
  core::RegisterSet regs;
  regs.add(reg);
  const backend::QubitResolver resolver(regs);
  sim::Circuit c(3, 0);
  backend::LoweringRegistry::instance().lower(op, resolver, c);
  const sim::Statevector sv = sim::Engine().run_statevector(c);
  EXPECT_NEAR(std::abs(sv.amplitude(1)), 0.6, 1e-9);
  EXPECT_NEAR(std::abs(sv.amplitude(6)), 0.8, 1e-9);
  EXPECT_NEAR(std::abs(sv.amplitude(0)), 0.0, 1e-9);
}

TEST_F(ExtensionsTest, AmplitudeEncodingValidation) {
  const core::QuantumDataType reg = algolib::make_uint_register("v", 2);
  EXPECT_THROW(algolib::amplitude_encoding_descriptor(reg, {1.0, 2.0}), ValidationError);
  EXPECT_THROW(algolib::amplitude_encoding_descriptor(reg, {1.0, -1.0, 0.0, 0.0}),
               ValidationError);
  EXPECT_THROW(algolib::amplitude_encoding_descriptor(reg, {0.0, 0.0, 0.0, 0.0}),
               ValidationError);
}

TEST_F(ExtensionsTest, AmplitudeEncodingEndToEndSampling) {
  // Through the full backend: sampled frequencies match |v_k|^2.
  const core::QuantumDataType reg = algolib::make_uint_register("v", 2);
  const std::vector<double> v{1.0, 1.0, 1.0, 1.0};  // uniform
  core::RegisterSet regs;
  regs.add(reg);
  core::OperatorSequence seq;
  seq.ops.push_back(algolib::amplitude_encoding_descriptor(reg, v));
  seq.ops.push_back(algolib::measurement_descriptor(reg));
  const auto result =
      core::submit(core::JobBundle::package(std::move(regs), std::move(seq), gate_ctx(20000)));
  for (const std::string key : {"00", "01", "10", "11"})
    EXPECT_NEAR(result.counts.probability(key), 0.25, 0.02) << key;
}


// --- X / Y basis readout -----------------------------------------------------------

TEST_F(ExtensionsTest, XBasisMeasurementIsDeterministicOnPlus) {
  // PREP_UNIFORM makes |+>; declaring basis X in the result schema reads it
  // deterministically as 0 (the paper's explicit-basis requirement).
  const core::QuantumDataType reg = algolib::make_flag_register("f");
  core::RegisterSet regs;
  regs.add(reg);
  core::OperatorSequence seq;
  seq.ops.push_back(algolib::prep_uniform_descriptor(reg));
  core::OperatorDescriptor measure = algolib::measurement_descriptor(reg);
  measure.result_schema->basis = core::Basis::X;
  seq.ops.push_back(measure);
  const auto result =
      core::submit(core::JobBundle::package(std::move(regs), std::move(seq), gate_ctx(2048)));
  ASSERT_EQ(result.counts.map().size(), 1u);
  EXPECT_EQ(result.counts.most_frequent(), "0");
}

TEST_F(ExtensionsTest, YBasisMeasurementIsDeterministicOnPlusI) {
  // RZ(pi/2)|+> = |i>, the +1 eigenstate of Y: deterministic 0 in basis Y,
  // but 50/50 in basis Z.
  const core::QuantumDataType reg = algolib::make_flag_register("f");
  auto build = [&](core::Basis basis) {
    core::RegisterSet regs;
    regs.add(reg);
    core::OperatorSequence seq;
    seq.ops.push_back(algolib::prep_uniform_descriptor(reg));
    seq.ops.push_back(algolib::phase_gadget_descriptor(reg, {0}, M_PI / 2.0));
    core::OperatorDescriptor measure = algolib::measurement_descriptor(reg);
    measure.result_schema->basis = basis;
    seq.ops.push_back(measure);
    return core::JobBundle::package(std::move(regs), std::move(seq), gate_ctx(4096));
  };
  const auto y_result = core::submit(build(core::Basis::Y));
  ASSERT_EQ(y_result.counts.map().size(), 1u);
  EXPECT_EQ(y_result.counts.most_frequent(), "0");
  const auto z_result = core::submit(build(core::Basis::Z));
  EXPECT_NEAR(z_result.counts.probability("0"), 0.5, 0.05);
}

TEST_F(ExtensionsTest, XBasisOnZeroIsUniform) {
  const core::QuantumDataType reg = algolib::make_flag_register("f");
  core::RegisterSet regs;
  regs.add(reg);
  core::OperatorSequence seq;
  core::OperatorDescriptor measure = algolib::measurement_descriptor(reg);
  measure.result_schema->basis = core::Basis::X;
  seq.ops.push_back(measure);
  const auto result =
      core::submit(core::JobBundle::package(std::move(regs), std::move(seq), gate_ctx(8192)));
  EXPECT_NEAR(result.counts.probability("0"), 0.5, 0.03);
}

}  // namespace
}  // namespace quml

// Semantic-analyzer suite: per-pass positive/negative cases for every QA
// family, byte-stable canonical ordering, the open PassRegistry, the
// ExecutionService admission wiring (defective bundles rejected
// *synchronously*, with codes and instruction indices, before any queueing),
// and a 32-seed clean-program property suite over the shared random-circuit
// generator — anything the execution stack accepts must lint without errors.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "algolib/graph.hpp"
#include "algolib/ising.hpp"
#include "algolib/qaoa.hpp"
#include "algolib/qft.hpp"
#include "algolib/stateprep.hpp"
#include "analysis/diagnostic.hpp"
#include "analysis/passes.hpp"
#include "backend/register_backends.hpp"
#include "sim/circuit.hpp"
#include "svc/execution_service.hpp"
#include "random_circuit.hpp"
#include "util/errors.hpp"

namespace quml {
namespace {

using algolib::Graph;
using analysis::AnalyzeOptions;
using analysis::Diagnostic;
using analysis::DiagnosticError;
using analysis::Report;
using analysis::Severity;
using analysis::SourceLoc;

// --- fixtures ---------------------------------------------------------------

core::JobBundle qft_bundle(unsigned width, const std::string& engine = "") {
  const auto reg = algolib::make_phase_register("p", width);
  core::RegisterSet regs;
  regs.add(reg);
  core::OperatorSequence seq;
  seq.ops.push_back(algolib::qft_descriptor(reg, {}));
  seq.ops.push_back(algolib::measurement_descriptor(reg));
  std::optional<core::Context> ctx;
  if (!engine.empty()) {
    ctx.emplace();
    ctx->exec.engine = engine;
    ctx->exec.samples = 64;
  }
  return core::JobBundle::package(std::move(regs), std::move(seq), std::move(ctx),
                                  "qft" + std::to_string(width));
}

/// QAOA-shaped gate bundle whose cost-phase edge list contains (0, bad) —
/// packaging accepts it (edges are analysis territory), the analyzer must not.
core::JobBundle bad_edge_bundle(int bad, std::vector<std::string> parameters = {}) {
  const auto reg = algolib::make_ising_register("s", 4);
  core::RegisterSet regs;
  regs.add(reg);
  core::OperatorSequence seq;
  seq.ops.push_back(algolib::prep_uniform_descriptor(reg));
  core::OperatorDescriptor cost = algolib::cost_phase_descriptor(reg, Graph::cycle(4), 0.5);
  json::Array edge;
  edge.emplace_back(0);
  edge.emplace_back(bad);
  edge.emplace_back(1.0);
  json::Array edges;
  edges.emplace_back(std::move(edge));
  cost.params.set("edges", json::Value(std::move(edges)));
  seq.ops.push_back(std::move(cost));
  seq.ops.push_back(algolib::measurement_descriptor(reg));
  core::Context ctx;
  ctx.exec.engine = "gate.statevector_simulator";
  ctx.exec.samples = 64;
  return core::JobBundle::package(std::move(regs), std::move(seq), ctx, "bad-edge",
                                  std::move(parameters));
}

core::OperatorDescriptor custom_unitary_descriptor(const core::QuantumDataType& reg,
                                                   double u00, double u11, int carrier = 0) {
  core::OperatorDescriptor op;
  op.name = "CU";
  op.rep_kind = core::rep::kCustomUnitary;
  op.domain_qdt = reg.id;
  op.codomain_qdt = reg.id;
  json::Array matrix;
  const auto entry = [&](double re, double im) {
    json::Array pair;
    pair.emplace_back(re);
    pair.emplace_back(im);
    matrix.emplace_back(std::move(pair));
  };
  entry(u00, 0.0);
  entry(0.0, 0.0);
  entry(0.0, 0.0);
  entry(u11, 0.0);
  op.params.set("matrix", json::Value(std::move(matrix)));
  op.params.set("carrier", json::Value(carrier));
  return op;
}

core::JobBundle custom_unitary_bundle(double u00, double u11) {
  const auto reg = algolib::make_phase_register("p", 2);
  core::RegisterSet regs;
  regs.add(reg);
  core::OperatorSequence seq;
  seq.ops.push_back(custom_unitary_descriptor(reg, u00, u11));
  seq.ops.push_back(algolib::measurement_descriptor(reg));
  core::Context ctx;
  ctx.exec.engine = "gate.statevector_simulator";
  ctx.exec.samples = 64;
  return core::JobBundle::package(std::move(regs), std::move(seq), ctx, "custom-u");
}

std::vector<std::string> codes_of(const Report& report, Severity severity) {
  std::vector<std::string> codes;
  for (const auto& d : report.diagnostics())
    if (d.severity == severity) codes.push_back(d.code);
  return codes;
}

bool has_code(const Report& report, const std::string& code) {
  return std::any_of(report.diagnostics().begin(), report.diagnostics().end(),
                     [&](const Diagnostic& d) { return d.code == code; });
}

const Diagnostic& find_code(const Report& report, const std::string& code) {
  for (const auto& d : report.diagnostics())
    if (d.code == code) return d;
  throw std::runtime_error("no diagnostic with code " + code);
}

// --- diagnostic rendering and ordering --------------------------------------

TEST(Diagnostic, RendersCodeSeverityAndLocation) {
  Diagnostic d;
  d.code = "QA001";
  d.severity = Severity::Error;
  d.message = "edge out of range";
  d.loc.instruction = 3;
  d.loc.op = "rzz";
  d.loc.qubits = {0, 1};
  d.loc.clbits = {2};
  EXPECT_EQ(d.str(), "error[QA001] #3 rzz q0,q1 -> c2: edge out of range");

  Diagnostic artifact;
  artifact.code = "QA090";
  artifact.severity = Severity::Note;
  artifact.message = "depth 7";
  EXPECT_EQ(artifact.str(), "note[QA090] bundle: depth 7");
}

TEST(Diagnostic, CanonicalOrderIsSeverityThenInstructionThenCode) {
  Report report;
  report.note("QA090", "n");
  SourceLoc at5;
  at5.instruction = 5;
  report.error("QA010", "late", at5);
  report.warning("QA011", "w");
  report.error("QA005", "artifact-level");
  SourceLoc at2;
  at2.instruction = 2;
  report.error("QA020", "early", at2);
  report.sort();
  std::vector<std::string> codes;
  for (const auto& d : report.diagnostics()) codes.push_back(d.code);
  EXPECT_EQ(codes, (std::vector<std::string>{"QA005", "QA020", "QA010", "QA011", "QA090"}));
  EXPECT_EQ(report.count(Severity::Error), 3u);
  EXPECT_TRUE(report.has_errors());
  EXPECT_EQ(report.errors().size(), 3u);
}

TEST(Diagnostic, ReportRendersByteStable) {
  // The full analyzer output for a fixed defective bundle, byte for byte:
  // admission rejections, lint output, and goldens must never drift apart.
  AnalyzeOptions options;
  options.resource_notes = false;
  const core::JobBundle bundle = bad_edge_bundle(9, {"theta"});
  const Report report = analysis::analyze_bundle(bundle, options);
  EXPECT_EQ(report.str(),
            "error[QA005] bundle: bundle does not lower: "
            "ISING_COST_PHASE edge endpoint out of range\n"
            "error[QA001] #1 ISING_COST_PHASE q0,q9: "
            "edges endpoint (0, 9) out of range for width 4\n"
            "warning[QA011] bundle: declared parameter 'theta' is never referenced");
  // Stability: a second run renders identically.
  EXPECT_EQ(report.str(), analysis::analyze_bundle(bundle, options).str());
}

TEST(Diagnostic, DiagnosticErrorCarriesFindings) {
  Report report;
  SourceLoc loc;
  loc.instruction = 1;
  loc.op = "CUSTOM_UNITARY";
  report.error("QA020", "matrix is not unitary", loc);
  try {
    analysis::require_clean(report, "bundle 'x' rejected");
    FAIL() << "require_clean must throw on errors";
  } catch (const DiagnosticError& e) {
    ASSERT_EQ(e.diagnostics().size(), 1u);
    EXPECT_EQ(e.diagnostics()[0].code, "QA020");
    const std::string what = e.what();
    EXPECT_NE(what.find("bundle 'x' rejected"), std::string::npos) << what;
    EXPECT_NE(what.find("error[QA020] #1 CUSTOM_UNITARY"), std::string::npos) << what;
  }
  analysis::require_clean(Report{}, "clean");  // no-op
}

// --- bounds pass (QA001/2) ---------------------------------------------------

TEST(BoundsPass, FlagsOutOfRangeEdgeEndpointWithInstructionIndex) {
  const Report report = analysis::analyze_bundle(bad_edge_bundle(9));
  ASSERT_TRUE(has_code(report, "QA001"));
  const Diagnostic& d = find_code(report, "QA001");
  EXPECT_EQ(d.severity, Severity::Error);
  EXPECT_EQ(d.loc.instruction, 1);
  EXPECT_EQ(d.loc.op, "ISING_COST_PHASE");
  EXPECT_EQ(d.loc.qubits, (std::vector<int>{0, 9}));
}

TEST(BoundsPass, CleanBundleHasNoErrors) {
  const Report report = analysis::analyze_bundle(qft_bundle(5));
  EXPECT_FALSE(report.has_errors()) << report.str();
  EXPECT_TRUE(has_code(report, "QA090"));  // notes still present
}

// --- admission pass (QA003/4) ------------------------------------------------

TEST(AdmissionPass, FlagsWidthBeyondEngineCapacity) {
  sched::BackendCapability cap;
  cap.name = "gate.tiny";
  cap.kind = "gate";
  cap.num_qubits = 3;
  AnalyzeOptions options;
  options.capability = cap;
  const Report report = analysis::analyze_bundle(qft_bundle(5), options);
  ASSERT_TRUE(has_code(report, "QA003"));
  EXPECT_NE(find_code(report, "QA003").message.find("caps at 3"), std::string::npos);
}

TEST(AdmissionPass, FlagsGateJobOnAnnealEngineAndViceVersa) {
  sched::BackendCapability anneal_cap;
  anneal_cap.name = "anneal.sa";
  anneal_cap.kind = "anneal";
  anneal_cap.num_qubits = 64;
  AnalyzeOptions options;
  options.capability = anneal_cap;
  EXPECT_TRUE(has_code(analysis::analyze_bundle(qft_bundle(4), options), "QA004"));

  const auto reg = algolib::make_ising_register("s", 4);
  core::RegisterSet regs;
  regs.add(reg);
  core::OperatorSequence seq;
  seq.ops.push_back(algolib::maxcut_ising_descriptor(reg, Graph::cycle(4)));
  const core::JobBundle ising =
      core::JobBundle::package(std::move(regs), std::move(seq), std::nullopt, "ising");
  sched::BackendCapability gate_cap;
  gate_cap.name = "gate.sv";
  gate_cap.kind = "gate";
  gate_cap.num_qubits = 26;
  options.capability = gate_cap;
  EXPECT_TRUE(has_code(analysis::analyze_bundle(ising, options), "QA004"));
  options.capability->kind = "anneal";
  EXPECT_FALSE(analysis::analyze_bundle(ising, options).has_errors());
}

// --- options pass (QA006) ----------------------------------------------------

TEST(OptionsPass, WarnsOnUnrecognizedExecOptionKeyWithSuggestion) {
  core::JobBundle bundle = qft_bundle(4, "gate.statevector_simulator");
  bundle.context->exec.options.set("max_retrys", json::Value(static_cast<std::int64_t>(2)));
  const Report report = analysis::analyze_bundle(bundle);
  ASSERT_TRUE(has_code(report, "QA006"));
  const Diagnostic& d = find_code(report, "QA006");
  EXPECT_EQ(d.severity, Severity::Warning);  // never rejects, only warns
  EXPECT_NE(d.message.find("max_retrys"), std::string::npos);
  EXPECT_NE(d.message.find("did you mean 'max_retries'"), std::string::npos);
}

TEST(OptionsPass, ChecksNestedFaultBlockKeys) {
  core::JobBundle bundle = qft_bundle(4, "gate.statevector_simulator");
  json::Value fault = json::Value::object();
  fault.set("fail_probb", json::Value(0.5));
  bundle.context->exec.options.set("fault", fault);
  const Report report = analysis::analyze_bundle(bundle);
  ASSERT_TRUE(has_code(report, "QA006"));
  EXPECT_NE(find_code(report, "QA006").message.find("fail_prob"), std::string::npos);
}

TEST(OptionsPass, KnownKeysStayQuiet) {
  core::JobBundle bundle = qft_bundle(4, "gate.statevector_simulator");
  bundle.context->exec.options.set("max_retries", json::Value(static_cast<std::int64_t>(2)));
  bundle.context->exec.options.set("retry_backoff_ms", json::Value(5.0));
  bundle.context->exec.options.set("deadline_ms", json::Value(1000.0));
  bundle.context->exec.options.set("optimization_level", json::Value(static_cast<std::int64_t>(2)));
  EXPECT_FALSE(has_code(analysis::analyze_bundle(bundle), "QA006"));
}

// --- params pass (QA010-13) --------------------------------------------------

TEST(ParamsPass, PackageRejectsUndeclaredReferenceWithQA010) {
  // Satellite wiring: core::package() itself now reports through diagnostics.
  const auto reg = algolib::make_ising_register("s", 4);
  core::RegisterSet regs;
  regs.add(reg);
  core::OperatorSequence seq;
  core::OperatorDescriptor cost = algolib::cost_phase_descriptor(reg, Graph::cycle(4), 0.0);
  cost.params.set("gamma", json::Value("$gamma"));
  seq.ops.push_back(std::move(cost));
  try {
    core::JobBundle::package(std::move(regs), std::move(seq), std::nullopt, "undeclared");
    FAIL() << "package must reject an undeclared $gamma";
  } catch (const DiagnosticError& e) {
    ASSERT_EQ(e.diagnostics().size(), 1u);
    EXPECT_EQ(e.diagnostics()[0].code, "QA010");
    EXPECT_EQ(e.diagnostics()[0].loc.instruction, 0);
    EXPECT_EQ(e.diagnostics()[0].loc.op, "ISING_COST_PHASE");
  }
}

TEST(ParamsPass, WarnsOnDeclaredNeverReferenced) {
  const Report report = analysis::analyze_bundle(bad_edge_bundle(1, {"theta"}));
  ASSERT_TRUE(has_code(report, "QA011"));
  EXPECT_EQ(find_code(report, "QA011").severity, Severity::Warning);
}

TEST(ParamsPass, RequireBoundFlagsFreeSymbols) {
  const auto reg = algolib::make_ising_register("s", 4);
  core::RegisterSet regs;
  regs.add(reg);
  core::OperatorSequence seq;
  core::OperatorDescriptor cost = algolib::cost_phase_descriptor(reg, Graph::cycle(4), 0.0);
  cost.params.set("gamma", json::Value("$gamma"));
  seq.ops.push_back(std::move(cost));
  seq.ops.push_back(algolib::measurement_descriptor(reg));
  const core::JobBundle bundle = core::JobBundle::package(
      std::move(regs), std::move(seq), std::nullopt, "sweepable", {"gamma"});

  AnalyzeOptions direct;
  direct.require_bound = true;
  const Report rejected = analysis::analyze_bundle(bundle, direct);
  ASSERT_TRUE(has_code(rejected, "QA012"));
  EXPECT_NE(find_code(rejected, "QA012").message.find("gamma"), std::string::npos);

  AnalyzeOptions sweep;  // lint / submit_sweep mode: free symbols are fine
  EXPECT_FALSE(analysis::analyze_bundle(bundle, sweep).has_errors());

  const std::vector<std::vector<double>> bad_rows = {{0.1}, {0.2, 0.3}};
  sweep.bindings = &bad_rows;
  const Report arity = analysis::analyze_bundle(bundle, sweep);
  ASSERT_TRUE(has_code(arity, "QA013"));
  EXPECT_NE(find_code(arity, "QA013").message.find("row 1"), std::string::npos);
}

// --- unitarity pass (QA020-23) -----------------------------------------------

TEST(UnitarityPass, FlagsNonUnitaryCustomMatrix) {
  const Report report = analysis::analyze_bundle(custom_unitary_bundle(1.0, 2.0));
  ASSERT_TRUE(has_code(report, "QA020"));
  const Diagnostic& d = find_code(report, "QA020");
  EXPECT_EQ(d.loc.instruction, 0);
  EXPECT_EQ(d.loc.op, "CUSTOM_UNITARY");
  EXPECT_FALSE(analysis::analyze_bundle(custom_unitary_bundle(1.0, 1.0)).has_errors());
}

TEST(UnitarityPass, FlagsMalformedMatrixShape) {
  const auto reg = algolib::make_phase_register("p", 1);
  core::RegisterSet regs;
  regs.add(reg);
  core::OperatorSequence seq;
  core::OperatorDescriptor op;
  op.name = "CU";
  op.rep_kind = core::rep::kCustomUnitary;
  op.domain_qdt = reg.id;
  op.codomain_qdt = reg.id;
  json::Array matrix;  // two entries instead of four
  json::Array pair;
  pair.emplace_back(1.0);
  pair.emplace_back(0.0);
  matrix.emplace_back(std::move(pair));
  op.params.set("matrix", json::Value(std::move(matrix)));
  seq.ops.push_back(std::move(op));
  seq.ops.push_back(algolib::measurement_descriptor(reg));
  const core::JobBundle bundle =
      core::JobBundle::package(std::move(regs), std::move(seq), std::nullopt, "shape");
  EXPECT_TRUE(has_code(analysis::analyze_bundle(bundle), "QA021"));
}

TEST(UnitarityPass, WarnsOnUnnormalizedAmplitudes) {
  const auto reg = algolib::make_phase_register("p", 1);
  core::RegisterSet regs;
  regs.add(reg);
  core::OperatorSequence seq;
  core::OperatorDescriptor op;
  op.name = "AMP";
  op.rep_kind = core::rep::kAmplitudeEncoding;
  op.domain_qdt = reg.id;
  op.codomain_qdt = reg.id;
  json::Array amps;
  amps.emplace_back(1.0);
  amps.emplace_back(1.0);  // norm² = 2
  op.params.set("amplitudes", json::Value(std::move(amps)));
  seq.ops.push_back(std::move(op));
  seq.ops.push_back(algolib::measurement_descriptor(reg));
  const core::JobBundle bundle =
      core::JobBundle::package(std::move(regs), std::move(seq), std::nullopt, "amp");
  const Report report = analysis::analyze_bundle(bundle);
  ASSERT_TRUE(has_code(report, "QA022"));
  EXPECT_EQ(find_code(report, "QA022").severity, Severity::Warning);
  EXPECT_FALSE(report.has_errors()) << report.str();
}

// --- clbit dataflow (QA030/31) ----------------------------------------------

TEST(ClbitDataflow, FlagsUnwrittenAndOverwrittenClbits) {
  sim::Circuit c(2, 2);
  c.h(0);
  c.measure(0, 0);
  c.x(0);
  c.measure(0, 0);  // overwrites c0; c1 is never written
  const Report report = analysis::analyze_circuit(c);
  ASSERT_TRUE(has_code(report, "QA030"));
  EXPECT_EQ(find_code(report, "QA030").loc.clbits, (std::vector<int>{1}));
  ASSERT_TRUE(has_code(report, "QA031"));
  EXPECT_EQ(find_code(report, "QA031").loc.instruction, 1);  // the shadowed measure
}

TEST(ClbitDataflow, CleanMeasureAllIsQuiet) {
  sim::Circuit c(2, 2);
  c.h(0);
  c.cx(0, 1);
  c.measure_all();
  const Report report = analysis::analyze_circuit(c);
  EXPECT_FALSE(has_code(report, "QA030"));
  EXPECT_FALSE(has_code(report, "QA031"));
}

// --- dead gates under sampled semantics (QA040-42) ---------------------------

TEST(DeadGates, FlagsGateAfterTerminalMeasurement) {
  sim::Circuit c(2, 2);
  c.h(0);
  c.cx(0, 1);
  c.measure_all();
  c.x(0);  // dead: after the qubit's terminal measurement
  const Report report = analysis::analyze_circuit(c);
  ASSERT_TRUE(has_code(report, "QA040"));
  const Diagnostic& d = find_code(report, "QA040");
  EXPECT_EQ(d.severity, Severity::Warning);
  EXPECT_EQ(d.loc.op, "x");
  EXPECT_EQ(d.loc.qubits, (std::vector<int>{0}));
}

TEST(DeadGates, FlagsGateOnNeverMeasuredQubit) {
  sim::Circuit c(3, 1);
  c.h(0);
  c.measure(0, 0);
  c.h(2);  // qubit 2 never reaches a measurement
  const Report report = analysis::analyze_circuit(c);
  ASSERT_TRUE(has_code(report, "QA041"));
  EXPECT_EQ(find_code(report, "QA041").loc.qubits, (std::vector<int>{2}));
}

TEST(DeadGates, FlagsDiagonalGateBeforeReadout) {
  sim::Circuit c(2, 2);
  c.h(0);
  c.cx(0, 1);
  c.rz(0.7, 0);  // diagonal immediately before Z readout: no sampled effect
  c.measure_all();
  const Report report = analysis::analyze_circuit(c);
  ASSERT_TRUE(has_code(report, "QA042"));
  EXPECT_EQ(find_code(report, "QA042").loc.op, "rz");
}

TEST(DeadGates, LiveGatesAndUnmeasuredCircuitsAreQuiet) {
  sim::Circuit live(2, 2);
  live.rz(0.7, 0);  // NOT dead: the h afterwards makes the phase observable
  live.h(0);
  live.cx(0, 1);
  live.measure_all();
  EXPECT_FALSE(has_code(analysis::analyze_circuit(live), "QA042"));
  EXPECT_FALSE(has_code(analysis::analyze_circuit(live), "QA040"));

  sim::Circuit bare(2, 0);  // amplitude-inspection circuit: no cone to reason about
  bare.h(0);
  bare.rz(0.3, 1);
  EXPECT_FALSE(has_code(analysis::analyze_circuit(bare), "QA041"));
}

// --- resources pass (QA090-92) -----------------------------------------------

TEST(ResourcesPass, NotesMatchCircuitMetricsAndRespectToggle) {
  const core::JobBundle bundle = qft_bundle(5);
  const Report report = analysis::analyze_bundle(bundle);
  ASSERT_TRUE(has_code(report, "QA090"));
  ASSERT_TRUE(has_code(report, "QA091"));
  ASSERT_TRUE(has_code(report, "QA092"));
  // width-5 exact QFT: n(n-1)/2 = 10 controlled-phases + reversal swaps = 12.
  EXPECT_EQ(find_code(report, "QA091").message, "two-qubit gates: 12");

  AnalyzeOptions quiet;
  quiet.resource_notes = false;
  const Report hot = analysis::analyze_bundle(bundle, quiet);
  EXPECT_EQ(hot.count(Severity::Note), 0u) << hot.str();
}

// --- pass registry -----------------------------------------------------------

TEST(PassRegistryTest, BuiltinsAreRegisteredInOrder) {
  const std::vector<std::string> names = analysis::PassRegistry::instance().names();
  const std::vector<std::string> expected = {"bounds",         "admission",  "options",
                                             "params",         "unitarity",  "clbit-dataflow",
                                             "dead-gates",     "resources"};
  EXPECT_EQ(names, expected);
}

TEST(PassRegistryTest, CustomPassRunsThroughAnalyzeBundle) {
  // Embedder extension point: a pass registered at startup sees every bundle.
  // Keyed to one job_id so the probe cannot pollute other tests (the registry
  // is process-global).
  analysis::PassRegistry::instance().register_pass(
      "test-probe", [](const analysis::PassInput& in, Report& report) {
        if (in.bundle && in.bundle->job_id == "custom-pass-probe")
          report.note("QA099", "probe pass ran");
      });
  core::JobBundle probe = qft_bundle(3);
  probe.job_id = "custom-pass-probe";
  EXPECT_TRUE(has_code(analysis::analyze_bundle(probe), "QA099"));
  EXPECT_FALSE(has_code(analysis::analyze_bundle(qft_bundle(3)), "QA099"));
}

// --- ExecutionService admission (the acceptance scenarios) -------------------

class AdmissionTest : public ::testing::Test {
 protected:
  void SetUp() override { backend::register_builtin_backends(); }
};

TEST_F(AdmissionTest, SubmitRejectsOutOfRangeEdgeSynchronously) {
  svc::ExecutionService service;
  try {
    service.submit(bad_edge_bundle(9));
    FAIL() << "defective bundle must be rejected at admission";
  } catch (const ValidationError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("QA001"), std::string::npos) << what;
    EXPECT_NE(what.find("#1 ISING_COST_PHASE"), std::string::npos) << what;
  }
  // Synchronous rejection: nothing was queued anywhere.
  EXPECT_EQ(service.queue_depth("gate.statevector_simulator"), 0u);
}

TEST_F(AdmissionTest, SubmitRejectsUnboundParameterizedBundle) {
  const auto reg = algolib::make_ising_register("s", 4);
  core::RegisterSet regs;
  regs.add(reg);
  core::OperatorSequence seq;
  seq.ops.push_back(algolib::prep_uniform_descriptor(reg));
  core::OperatorDescriptor cost = algolib::cost_phase_descriptor(reg, Graph::cycle(4), 0.0);
  cost.params.set("gamma", json::Value("$gamma"));
  seq.ops.push_back(std::move(cost));
  seq.ops.push_back(algolib::measurement_descriptor(reg));
  core::Context ctx;
  ctx.exec.engine = "gate.statevector_simulator";
  ctx.exec.samples = 64;
  core::JobBundle bundle = core::JobBundle::package(std::move(regs), std::move(seq), ctx,
                                                    "unbound", {"gamma"});
  svc::ExecutionService service;
  try {
    service.submit(std::move(bundle));
    FAIL() << "unbound direct submit must be rejected";
  } catch (const ValidationError& e) {
    EXPECT_NE(std::string(e.what()).find("QA012"), std::string::npos) << e.what();
  }
  EXPECT_EQ(service.queue_depth("gate.statevector_simulator"), 0u);
}

TEST_F(AdmissionTest, SubmitRejectsNonUnitaryCustomMatrix) {
  svc::ExecutionService service;
  try {
    service.submit(custom_unitary_bundle(1.0, 2.0));
    FAIL() << "non-unitary matrix must be rejected";
  } catch (const ValidationError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("QA020"), std::string::npos) << what;
    EXPECT_NE(what.find("#0 CUSTOM_UNITARY"), std::string::npos) << what;
  }
  EXPECT_EQ(service.queue_depth("gate.statevector_simulator"), 0u);
}

TEST_F(AdmissionTest, SubmitSweepRejectsDefectiveBundleButAcceptsFreeSymbols) {
  const auto build = [](int bad_edge) {
    const auto reg = algolib::make_ising_register("s", 4);
    core::RegisterSet regs;
    regs.add(reg);
    core::OperatorSequence seq;
    seq.ops.push_back(algolib::prep_uniform_descriptor(reg));
    core::OperatorDescriptor cost =
        algolib::cost_phase_descriptor(reg, Graph::cycle(4), 0.0);
    cost.params.set("gamma", json::Value("$gamma"));
    if (bad_edge >= 0) {
      json::Array edge;
      edge.emplace_back(0);
      edge.emplace_back(bad_edge);
      edge.emplace_back(1.0);
      json::Array edges;
      edges.emplace_back(std::move(edge));
      cost.params.set("edges", json::Value(std::move(edges)));
    }
    seq.ops.push_back(std::move(cost));
    seq.ops.push_back(algolib::measurement_descriptor(reg));
    core::Context ctx;
    ctx.exec.engine = "gate.statevector_simulator";
    ctx.exec.samples = 64;
    return core::JobBundle::package(std::move(regs), std::move(seq), ctx, "sweep",
                                    {"gamma"});
  };
  svc::ExecutionService service;
  EXPECT_THROW(service.submit_sweep(build(9), {{0.1}, {0.2}}), ValidationError);
  // Free symbols are the POINT of a sweep: same program with valid edges runs.
  svc::SweepHandle handle = service.submit_sweep(build(-1), {{0.1}, {0.2}});
  handle.wait();
  EXPECT_EQ(handle.status(0), svc::JobStatus::Done);
  EXPECT_EQ(handle.status(1), svc::JobStatus::Done);
}

TEST_F(AdmissionTest, CleanBundleStillRunsEndToEnd) {
  svc::ExecutionService service;
  const svc::JobId id = service.submit(qft_bundle(4, "gate.statevector_simulator"));
  const core::ExecutionResult result = service.handle(id).result();
  EXPECT_EQ(result.counts.total(), 64);
}

// --- 32-seed clean-program property suite ------------------------------------

class AnalysisSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AnalysisSeeds, RandomValidCircuitsLintWithoutErrors) {
  const std::uint64_t seed = GetParam();
  sim::testgen::GenOptions opt;
  opt.measures = true;
  opt.num_params = static_cast<int>(seed % 3);
  const sim::Circuit c = sim::testgen::random_circuit(seed, 5, 48, opt);
  const Report report = analysis::analyze_circuit(c);
  // Anything the execution stack accepts must produce zero error findings
  // (warnings — dead tails the generator happens to emit — are fine).
  EXPECT_EQ(codes_of(report, Severity::Error), std::vector<std::string>{}) << report.str();
  // Determinism: the report renders identically on a second run.
  EXPECT_EQ(report.str(), analysis::analyze_circuit(c).str());
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalysisSeeds, ::testing::Range<std::uint64_t>(0, 32));

}  // namespace
}  // namespace quml

// Tests for the cost-hint scheduler: feasibility, duration/fidelity
// estimation from descriptor metadata alone, backend choice, and the
// queue-simulation comparison of hint-aware vs hint-blind policies.

#include <gtest/gtest.h>

#include "algolib/arithmetic.hpp"
#include "algolib/ising.hpp"
#include "algolib/qaoa.hpp"
#include "algolib/qft.hpp"
#include "algolib/stateprep.hpp"
#include "sched/scheduler.hpp"
#include "util/errors.hpp"

namespace quml::sched {
namespace {

using algolib::Graph;

BackendCapability gate_device(const std::string& name = "gate.sim", int qubits = 20) {
  BackendCapability cap;
  cap.name = name;
  cap.kind = "gate";
  cap.num_qubits = qubits;
  return cap;
}

BackendCapability anneal_device(const std::string& name = "anneal.sim", int qubits = 64) {
  BackendCapability cap;
  cap.name = name;
  cap.kind = "anneal";
  cap.num_qubits = qubits;
  return cap;
}

BackendCapability mps_device(const std::string& name = "gate.mps", int qubits = 64,
                             int bond = 64) {
  BackendCapability cap;
  cap.name = name;
  cap.kind = "gate";
  cap.num_qubits = qubits;
  cap.representation = "mps";
  cap.max_bond_dim = bond;
  // Mirror the registered advertisement: exact simulation (no gate errors),
  // slower per-gate tensor updates than the dense kernels.
  cap.oneq_time_us = 0.5;
  cap.twoq_time_us = 3.0;
  cap.oneq_error = 0.0;
  cap.twoq_error = 0.0;
  return cap;
}

core::JobBundle ghz_bundle(unsigned width) {
  const auto reg = algolib::make_uint_register("g", width);
  core::RegisterSet regs;
  regs.add(reg);
  core::OperatorSequence seq;
  seq.ops.push_back(algolib::ghz_prep_descriptor(reg));
  seq.ops.push_back(algolib::measurement_descriptor(reg));
  core::Context ctx;
  ctx.exec.engine = "auto";
  ctx.exec.samples = 256;
  return core::JobBundle::package(std::move(regs), std::move(seq), ctx,
                                  "ghz-" + std::to_string(width));
}

core::JobBundle qaoa_bundle(int n = 4, std::int64_t samples = 1024) {
  const auto reg = algolib::make_ising_register("s", static_cast<unsigned>(n));
  core::RegisterSet regs;
  regs.add(reg);
  core::Context ctx;
  ctx.exec.engine = "gate.statevector_simulator";
  ctx.exec.samples = samples;
  return core::JobBundle::package(
      std::move(regs), algolib::qaoa_sequence(reg, Graph::cycle(n), algolib::ring_p1_angles()),
      ctx, "qaoa-job");
}

core::JobBundle ising_bundle(int n = 4) {
  const auto reg = algolib::make_ising_register("s", static_cast<unsigned>(n));
  core::RegisterSet regs;
  regs.add(reg);
  core::OperatorSequence seq;
  seq.ops.push_back(algolib::maxcut_ising_descriptor(reg, Graph::cycle(n)));
  core::Context ctx;
  ctx.exec.engine = "anneal.simulated_annealer";
  ctx.exec.samples = 1000;
  return core::JobBundle::package(std::move(regs), std::move(seq), ctx, "ising-job");
}

core::JobBundle qft_bundle(unsigned width) {
  const auto reg = algolib::make_phase_register("p", width);
  core::RegisterSet regs;
  regs.add(reg);
  core::OperatorSequence seq;
  seq.ops.push_back(algolib::qft_descriptor(reg, {}));
  seq.ops.push_back(algolib::measurement_descriptor(reg));
  core::Context ctx;
  ctx.exec.engine = "gate.statevector_simulator";
  ctx.exec.samples = 1024;
  return core::JobBundle::package(std::move(regs), std::move(seq), ctx,
                                  "qft-" + std::to_string(width));
}

TEST(Estimate, WidthFeasibility) {
  const JobEstimate est = estimate(qft_bundle(10), gate_device("small", 8));
  EXPECT_FALSE(est.feasible);
  EXPECT_NE(est.reason.find("qubits"), std::string::npos);
  EXPECT_TRUE(estimate(qft_bundle(10), gate_device("big", 16)).feasible);
}

TEST(Estimate, FormulationMatchesKind) {
  EXPECT_FALSE(estimate(ising_bundle(), gate_device()).feasible);
  EXPECT_FALSE(estimate(qaoa_bundle(), anneal_device()).feasible);
  EXPECT_TRUE(estimate(ising_bundle(), anneal_device()).feasible);
  EXPECT_TRUE(estimate(qaoa_bundle(), gate_device()).feasible);
}

TEST(Estimate, DurationScalesWithCostHints) {
  // A 12-qubit QFT (66 CPs, depth hint 144) must cost more than a 4-qubit
  // one (6 CPs, depth 16) on the same device.
  const double small = estimate(qft_bundle(4), gate_device()).duration_us;
  const double large = estimate(qft_bundle(12), gate_device()).duration_us;
  EXPECT_GT(large, small);
}

TEST(Estimate, SuccessDecreasesWithGateCount) {
  const double small = estimate(qft_bundle(4), gate_device()).success_prob;
  const double large = estimate(qft_bundle(12), gate_device()).success_prob;
  EXPECT_GT(small, large);
  EXPECT_GT(small, 0.0);
  EXPECT_LE(small, 1.0);
}

TEST(Estimate, QueueWaitAdds) {
  BackendCapability busy = gate_device();
  busy.queue_wait_us = 1e6;
  EXPECT_GT(estimate(qaoa_bundle(), busy).duration_us,
            estimate(qaoa_bundle(), gate_device()).duration_us + 0.9e6);
}

TEST(Estimate, AnnealDurationFromReads) {
  const JobEstimate est = estimate(ising_bundle(), anneal_device());
  EXPECT_DOUBLE_EQ(est.duration_us, 1000 * 20.0);  // samples * read time
}

TEST(Choose, PicksTheOnlyFeasibleBackend) {
  const Decision d = choose_backend(ising_bundle(), {gate_device(), anneal_device()});
  EXPECT_EQ(d.backend, "anneal.sim");
  EXPECT_EQ(d.considered.size(), 2u);
}

TEST(Choose, PrefersLowerErrorDevice) {
  BackendCapability good = gate_device("good");
  good.twoq_error = 1e-4;
  BackendCapability bad = gate_device("bad");
  bad.twoq_error = 5e-2;
  const Decision d = choose_backend(qft_bundle(10), {bad, good});
  EXPECT_EQ(d.backend, "good");
}

TEST(Choose, TimeWeightCanFlipTheDecision) {
  BackendCapability accurate_slow = gate_device("accurate_slow");
  accurate_slow.twoq_error = 1e-5;
  accurate_slow.queue_wait_us = 1e9;
  BackendCapability rough_fast = gate_device("rough_fast");
  rough_fast.twoq_error = 2e-3;
  ScoreWeights quality_first;
  quality_first.time_weight = 0.0;
  EXPECT_EQ(choose_backend(qft_bundle(10), {accurate_slow, rough_fast}, quality_first).backend,
            "accurate_slow");
  ScoreWeights time_first;
  time_first.time_weight = 10.0;
  time_first.quality_weight = 0.1;
  EXPECT_EQ(choose_backend(qft_bundle(10), {accurate_slow, rough_fast}, time_first).backend,
            "rough_fast");
}

TEST(Choose, ThrowsWithReasonsWhenNothingFits) {
  try {
    choose_backend(qft_bundle(10), {gate_device("tiny", 4), anneal_device()});
    FAIL() << "expected BackendError";
  } catch (const BackendError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("tiny"), std::string::npos);
    EXPECT_NE(what.find("anneal"), std::string::npos);
  }
}

TEST(Queue, CostHintAwareBeatsRoundRobin) {
  // EXP-SCHED shape: heterogeneous jobs on heterogeneous devices — knowing
  // the cost hints yields a strictly better makespan than blind round robin.
  std::vector<core::JobBundle> jobs;
  for (int i = 0; i < 4; ++i) jobs.push_back(qft_bundle(12));  // heavy gate jobs
  for (int i = 0; i < 4; ++i) jobs.push_back(qaoa_bundle());   // light gate jobs
  BackendCapability fast = gate_device("fast");
  fast.twoq_time_us = 0.1;
  BackendCapability slow = gate_device("slow");
  slow.twoq_time_us = 1.0;
  const QueueReport aware = simulate_queue(jobs, {fast, slow}, Policy::CostHintAware);
  const QueueReport blind = simulate_queue(jobs, {fast, slow}, Policy::RoundRobin);
  EXPECT_LT(aware.makespan_us, blind.makespan_us);
}

TEST(Queue, MixedKindsRouteCorrectly) {
  std::vector<core::JobBundle> jobs{qaoa_bundle(), ising_bundle(), qaoa_bundle(), ising_bundle()};
  const std::vector<BackendCapability> fleet{gate_device(), anneal_device()};
  for (const auto policy : {Policy::CostHintAware, Policy::RoundRobin}) {
    const QueueReport report = simulate_queue(jobs, fleet, policy);
    EXPECT_EQ(report.assignment[0], 0);  // gate job -> gate device
    EXPECT_EQ(report.assignment[1], 1);  // ising job -> anneal device
    EXPECT_GT(report.makespan_us, 0.0);
  }
}

TEST(Queue, UnplaceableJobThrows) {
  EXPECT_THROW(simulate_queue({qft_bundle(10)}, {gate_device("tiny", 4)}, Policy::CostHintAware),
               BackendError);
  EXPECT_THROW(simulate_queue({qft_bundle(4)}, {}, Policy::CostHintAware), BackendError);
}

TEST(Capability, JsonRoundTrip) {
  BackendCapability cap = gate_device("x", 12);
  cap.twoq_error = 0.005;
  cap.queue_wait_us = 77.0;
  const BackendCapability back = BackendCapability::from_json(cap.to_json());
  EXPECT_EQ(back.name, "x");
  EXPECT_EQ(back.num_qubits, 12);
  EXPECT_DOUBLE_EQ(back.twoq_error, 0.005);
  EXPECT_DOUBLE_EQ(back.queue_wait_us, 77.0);
  // Defaults: dense representation, no bond axis (and to_json omits it).
  EXPECT_EQ(back.representation, "statevector");
  EXPECT_EQ(back.max_bond_dim, 0);
  EXPECT_FALSE(cap.to_json().contains("max_bond_dim"));
}

TEST(Capability, RepresentationAxisRoundTrips) {
  const BackendCapability cap = mps_device("gate.mps", 64, 48);
  const json::Value doc = cap.to_json();
  EXPECT_EQ(doc.get_string("representation", ""), "mps");
  EXPECT_EQ(doc.at("max_bond_dim").as_int(), 48);
  const BackendCapability back = BackendCapability::from_json(doc);
  EXPECT_EQ(back.representation, "mps");
  EXPECT_EQ(back.max_bond_dim, 48);
  EXPECT_EQ(back.num_qubits, 64);
}

// --- the entanglement-aware MPS heuristic ------------------------------------

TEST(Estimate, EntanglementScoreIsTwoQubitGatesPerQubit) {
  // GHZ over n qubits: n-1 CX on n qubits -> score just under 1, on any
  // gate-kind estimate (dense devices report it too; they just don't price
  // it).
  const JobEstimate est = estimate(ghz_bundle(40), mps_device());
  ASSERT_TRUE(est.feasible);
  EXPECT_NEAR(est.entanglement_score, 39.0 / 40.0, 1e-12);
  const JobEstimate qft = estimate(qft_bundle(20), gate_device("dense", 26));
  ASSERT_TRUE(qft.feasible);
  EXPECT_GT(qft.entanglement_score, 8.0);  // ~190 CP over 20 qubits
}

TEST(Estimate, MpsPricesEntanglementDenseDoesNot) {
  // Deep narrow circuit: the MPS estimate pays the chi^3 runtime multiplier
  // and a fidelity penalty for the bond it cannot afford; the dense estimate
  // of the same bundle stays exact and cheap.
  const JobEstimate on_mps = estimate(qft_bundle(20), mps_device("gate.mps", 64, 64));
  const JobEstimate on_dense = estimate(qft_bundle(20), gate_device("dense", 26));
  ASSERT_TRUE(on_mps.feasible);
  ASSERT_TRUE(on_dense.feasible);
  EXPECT_GT(on_mps.duration_us, 100.0 * on_dense.duration_us);
  EXPECT_LT(on_mps.success_prob, 0.5);
  EXPECT_GT(on_dense.success_prob, 0.8);

  // Wide shallow circuit: bond 2 fits comfortably under the cap, so the MPS
  // estimate keeps full fidelity and no runtime blow-up.
  const JobEstimate ghz = estimate(ghz_bundle(40), mps_device());
  ASSERT_TRUE(ghz.feasible);
  EXPECT_NEAR(ghz.success_prob, 1.0, 1e-9);
  // A raised bond cap only helps: more affordable bond, never less fidelity.
  const JobEstimate ghz_small_cap = estimate(ghz_bundle(40), mps_device("gate.mps", 64, 2));
  EXPECT_GE(ghz.success_prob, ghz_small_cap.success_prob);
}

TEST(Choose, RoutesByWidthAndEntanglement) {
  const std::vector<BackendCapability> fleet{gate_device("gate.dense", 30), mps_device()};
  // 40 qubits of GHZ: only MPS admits the width.
  EXPECT_EQ(choose_backend(ghz_bundle(40), fleet).backend, "gate.mps");
  // 20-qubit QFT fits both, but the entanglement penalty hands it to dense.
  EXPECT_EQ(choose_backend(qft_bundle(20), fleet).backend, "gate.dense");
}

}  // namespace
}  // namespace quml::sched

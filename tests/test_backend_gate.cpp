// End-to-end tests of the gate backend: lowering correctness for every
// built-in rep_kind (QFT vs DFT matrix, Draper adders, Beauregard modular
// adder, comparator, QPE, SWAP test), context-driven transpilation, typed
// decoding, and determinism.

#include <gtest/gtest.h>

#include <cmath>

#include "algolib/arithmetic.hpp"
#include "algolib/booleans.hpp"
#include "algolib/ising.hpp"
#include "algolib/phase.hpp"
#include "algolib/qaoa.hpp"
#include "algolib/qft.hpp"
#include "algolib/stateprep.hpp"
#include "backend/lowering.hpp"
#include "backend/register_backends.hpp"
#include "core/registry.hpp"
#include "sim/engine.hpp"
#include "util/errors.hpp"

namespace quml {
namespace {

using algolib::Graph;
using core::Context;
using core::JobBundle;
using core::OperatorSequence;
using core::RegisterSet;

class GateBackendTest : public ::testing::Test {
 protected:
  void SetUp() override { backend::register_builtin_backends(); }

  static Context gate_ctx(std::int64_t samples = 4096, std::uint64_t seed = 42) {
    Context ctx;
    ctx.exec.engine = "gate.statevector_simulator";
    ctx.exec.samples = samples;
    ctx.exec.seed = seed;
    return ctx;
  }
};

TEST_F(GateBackendTest, RegistryResolvesAliases) {
  auto& registry = core::BackendRegistry::instance();
  EXPECT_TRUE(registry.has("gate.statevector_simulator"));
  EXPECT_TRUE(registry.has("gate.aer_simulator"));  // paper Listing 4 name
  EXPECT_TRUE(registry.has("anneal.neal_simulator"));
  EXPECT_THROW(registry.create("gate.warp_drive"), BackendError);
  EXPECT_EQ(registry.create("gate.aer_simulator")->name(), "gate.statevector_simulator");
}

TEST_F(GateBackendTest, QftOnBasisStateMatchesDft) {
  // Property: lowering QFT_TEMPLATE gives exactly the DFT matrix action.
  for (const int n : {2, 3, 5}) {
    const std::uint64_t dim = 1ull << n;
    for (std::uint64_t k = 0; k < dim; ++k) {
      sim::Circuit c(n, 0);
      std::vector<int> qubits(static_cast<std::size_t>(n));
      for (int i = 0; i < n; ++i) qubits[static_cast<std::size_t>(i)] = i;
      backend::append_qft(c, qubits, 0, true, false);
      sim::Statevector sv(n);
      sv.set_basis_state(k);
      sv.apply_unitaries(c);
      for (std::uint64_t j = 0; j < dim; ++j) {
        const auto want = std::exp(sim::c64(0.0, 2.0 * M_PI * double(k) * double(j) / double(dim))) /
                          std::sqrt(double(dim));
        ASSERT_NEAR(std::abs(sv.amplitude(j) - want), 0.0, 1e-9)
            << "n=" << n << " k=" << k << " j=" << j;
      }
    }
  }
}

TEST_F(GateBackendTest, QftInverseUndoesForward) {
  sim::Circuit c(4, 0);
  backend::append_qft(c, {0, 1, 2, 3}, 0, true, false);
  backend::append_qft(c, {0, 1, 2, 3}, 0, true, true);
  sim::Statevector sv(4);
  sv.set_basis_state(11);
  sv.apply_unitaries(c);
  EXPECT_NEAR(std::abs(sv.amplitude(11)), 1.0, 1e-9);
}

TEST_F(GateBackendTest, ApproximateQftDropsGates) {
  sim::Circuit exact(6, 0), approx(6, 0);
  backend::append_qft(exact, {0, 1, 2, 3, 4, 5}, 0, false, false);
  backend::append_qft(approx, {0, 1, 2, 3, 4, 5}, 2, false, false);
  EXPECT_EQ(exact.two_qubit_count() - approx.two_qubit_count(), 3);  // a(a+1)/2
}

TEST_F(GateBackendTest, QftEndToEndDecodesPhase) {
  // Prepare |k> on a phase register, run QFT + IQFT, and read back k as a
  // typed phase via the middle layer's automatic decoding.
  const core::QuantumDataType reg = algolib::make_phase_register("reg_phase", 4);
  RegisterSet regs;
  regs.add(reg);
  OperatorSequence seq;
  seq.ops.push_back(
      algolib::basis_state_prep_descriptor(reg, core::TypedValue::from_phase(0.25)));
  algolib::QftParams fwd, inv;
  inv.inverse = true;
  seq.ops.push_back(algolib::qft_descriptor(reg, fwd));
  seq.ops.push_back(algolib::qft_descriptor(reg, inv));
  seq.ops.push_back(algolib::measurement_descriptor(reg));
  const JobBundle bundle = JobBundle::package(std::move(regs), std::move(seq), gate_ctx(1024));
  const core::ExecutionResult result = core::submit(bundle);
  ASSERT_EQ(result.decoded.size(), 1u);
  EXPECT_DOUBLE_EQ(result.decoded[0].value.real_value, 0.25);
  EXPECT_EQ(result.decoded[0].count, 1024);
}

TEST_F(GateBackendTest, QaoaMaxCutReproducesPaperNumbers) {
  // EXP-F2: expected cut in [2.9, 3.3] (paper reports 3.0-3.2); the two
  // optimal strings 1010/0101 are the modal outcomes.
  const core::QuantumDataType reg = algolib::make_ising_register("ising_vars", 4);
  const Graph graph = Graph::cycle(4);
  RegisterSet regs;
  regs.add(reg);
  const JobBundle bundle = JobBundle::package(
      std::move(regs), algolib::qaoa_sequence(reg, graph, algolib::ring_p1_angles()),
      gate_ctx(4096, 42));
  const core::ExecutionResult result = core::submit(bundle);
  const double expected_cut = result.counts.expectation(
      [&](const std::string& bits) { return graph.cut_value_bits(bits); });
  EXPECT_GE(expected_cut, 2.9);
  EXPECT_LE(expected_cut, 3.3);
  const std::string top = result.counts.most_frequent();
  EXPECT_TRUE(top == "1010" || top == "0101") << top;
  EXPECT_GT(result.counts.probability("1010") + result.counts.probability("0101"), 0.4);
}

TEST_F(GateBackendTest, QaoaWithListing4StyleContext) {
  // Ring coupling map + sx/rz/cx basis + optimization_level 2 must not
  // change the measured distribution beyond sampling noise.
  const core::QuantumDataType reg = algolib::make_ising_register("ising_vars", 4);
  const Graph graph = Graph::cycle(4);
  Context ctx = gate_ctx(8192, 7);
  ctx.exec.target.basis_gates = {"sx", "rz", "cx"};
  ctx.exec.target.coupling_map = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  ctx.exec.options.set("optimization_level", json::Value(std::int64_t{2}));
  RegisterSet regs;
  regs.add(reg);
  const JobBundle bundle = JobBundle::package(
      std::move(regs), algolib::qaoa_sequence(reg, graph, algolib::ring_p1_angles()), ctx);
  const core::ExecutionResult result = core::submit(bundle);
  const double expected_cut = result.counts.expectation(
      [&](const std::string& bits) { return graph.cut_value_bits(bits); });
  EXPECT_NEAR(expected_cut, 3.0, 0.15);
  // Transpile metadata proves the context was honored.
  const json::Value& tmeta = result.metadata.at("transpile");
  EXPECT_EQ(tmeta.get_int("optimization_level", -1), 2);
}

TEST_F(GateBackendTest, DeterministicAcrossRuns) {
  const core::QuantumDataType reg = algolib::make_ising_register("s", 4);
  const Graph graph = Graph::cycle(4);
  auto run_once = [&] {
    RegisterSet regs;
    regs.add(reg);
    return core::submit(JobBundle::package(
        std::move(regs), algolib::qaoa_sequence(reg, graph, algolib::ring_p1_angles()),
        gate_ctx(512, 99)));
  };
  EXPECT_EQ(run_once().counts.to_json(), run_once().counts.to_json());
}

class AdderEndToEnd : public GateBackendTest,
                      public ::testing::WithParamInterface<std::tuple<int, int>> {};

TEST_P(AdderEndToEnd, AddsConstantModulo2n) {
  const auto [a, c] = GetParam();
  const core::QuantumDataType reg = algolib::make_uint_register("x", 3);
  RegisterSet regs;
  regs.add(reg);
  OperatorSequence seq;
  seq.ops.push_back(algolib::basis_state_prep_descriptor(
      reg, core::TypedValue::from_uint(static_cast<std::uint64_t>(a))));
  seq.ops.push_back(algolib::adder_const_descriptor(reg, c));
  seq.ops.push_back(algolib::measurement_descriptor(reg));
  const core::ExecutionResult result =
      core::submit(JobBundle::package(std::move(regs), std::move(seq), gate_ctx(128)));
  ASSERT_EQ(result.decoded.size(), 1u);
  EXPECT_EQ(result.decoded[0].value.uint_value, static_cast<std::uint64_t>((a + c) % 8));
}

INSTANTIATE_TEST_SUITE_P(Sweep, AdderEndToEnd,
                         ::testing::Combine(::testing::Values(0, 1, 5, 7),
                                            ::testing::Values(0, 1, 3, 7)));

TEST_F(GateBackendTest, SubtractionViaInverse) {
  const core::QuantumDataType reg = algolib::make_uint_register("x", 4);
  RegisterSet regs;
  regs.add(reg);
  OperatorSequence seq;
  seq.ops.push_back(algolib::basis_state_prep_descriptor(reg, core::TypedValue::from_uint(3)));
  seq.ops.push_back(algolib::adder_const_descriptor(reg, 5, /*subtract=*/true));
  seq.ops.push_back(algolib::measurement_descriptor(reg));
  const auto result =
      core::submit(JobBundle::package(std::move(regs), std::move(seq), gate_ctx(64)));
  EXPECT_EQ(result.decoded[0].value.uint_value, (3u - 5u + 16u) % 16u);  // wraps mod 16
}

class ModularAdderEndToEnd : public GateBackendTest,
                             public ::testing::WithParamInterface<std::tuple<int, int>> {};

TEST_P(ModularAdderEndToEnd, AddsConstantModM) {
  const auto [a, c] = GetParam();
  const int modulus = 13;
  const core::QuantumDataType reg = algolib::make_uint_register("x", 4);
  const core::QuantumDataType scratch = algolib::make_flag_register("scratch");
  const core::QuantumDataType flag = algolib::make_flag_register("flag");
  RegisterSet regs;
  regs.add(reg);
  regs.add(scratch);
  regs.add(flag);
  OperatorSequence seq;
  seq.ops.push_back(algolib::basis_state_prep_descriptor(
      reg, core::TypedValue::from_uint(static_cast<std::uint64_t>(a))));
  seq.ops.push_back(algolib::modular_adder_const_descriptor(reg, scratch, flag, c, modulus));
  seq.ops.push_back(algolib::measurement_descriptor(reg));
  const auto result =
      core::submit(JobBundle::package(std::move(regs), std::move(seq), gate_ctx(64)));
  ASSERT_EQ(result.decoded.size(), 1u);
  EXPECT_EQ(result.decoded[0].value.uint_value, static_cast<std::uint64_t>((a + c) % modulus))
      << "a=" << a << " c=" << c;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ModularAdderEndToEnd,
                         ::testing::Combine(::testing::Values(0, 4, 9, 12),
                                            ::testing::Values(0, 1, 6, 12)));

TEST_F(GateBackendTest, ModularAdderRestoresAncillas) {
  // Flag and scratch must end in |0> (measure them instead of the register).
  const core::QuantumDataType reg = algolib::make_uint_register("x", 4);
  const core::QuantumDataType scratch = algolib::make_flag_register("scratch");
  const core::QuantumDataType flag = algolib::make_flag_register("flag");
  RegisterSet regs;
  regs.add(reg);
  regs.add(scratch);
  regs.add(flag);
  OperatorSequence seq;
  seq.ops.push_back(algolib::basis_state_prep_descriptor(reg, core::TypedValue::from_uint(9)));
  seq.ops.push_back(algolib::modular_adder_const_descriptor(reg, scratch, flag, 8, 13));
  seq.ops.push_back(algolib::measurement_descriptor(flag));
  const auto result =
      core::submit(JobBundle::package(std::move(regs), std::move(seq), gate_ctx(128)));
  ASSERT_EQ(result.counts.map().size(), 1u);
  EXPECT_EQ(result.counts.most_frequent(), "0");
}

class ComparatorEndToEnd : public GateBackendTest,
                           public ::testing::WithParamInterface<std::tuple<int, int>> {};

TEST_P(ComparatorEndToEnd, FlagsLessThan) {
  const auto [a, threshold] = GetParam();
  const core::QuantumDataType reg = algolib::make_uint_register("x", 3);
  const core::QuantumDataType scratch = algolib::make_flag_register("scratch");
  const core::QuantumDataType flag = algolib::make_flag_register("flag");
  RegisterSet regs;
  regs.add(reg);
  regs.add(scratch);
  regs.add(flag);
  OperatorSequence seq;
  seq.ops.push_back(algolib::basis_state_prep_descriptor(
      reg, core::TypedValue::from_uint(static_cast<std::uint64_t>(a))));
  seq.ops.push_back(algolib::comparator_const_descriptor(reg, scratch, flag, threshold));
  seq.ops.push_back(algolib::measurement_descriptor(flag));
  const auto result =
      core::submit(JobBundle::package(std::move(regs), std::move(seq), gate_ctx(64)));
  EXPECT_EQ(result.counts.most_frequent(), a < threshold ? "1" : "0")
      << "a=" << a << " threshold=" << threshold;
}

INSTANTIATE_TEST_SUITE_P(Sweep, ComparatorEndToEnd,
                         ::testing::Combine(::testing::Values(0, 2, 5, 7),
                                            ::testing::Values(1, 4, 7)));

TEST_F(GateBackendTest, ComparatorRestoresDataRegister) {
  const core::QuantumDataType reg = algolib::make_uint_register("x", 3);
  const core::QuantumDataType scratch = algolib::make_flag_register("scratch");
  const core::QuantumDataType flag = algolib::make_flag_register("flag");
  RegisterSet regs;
  regs.add(reg);
  regs.add(scratch);
  regs.add(flag);
  OperatorSequence seq;
  seq.ops.push_back(algolib::basis_state_prep_descriptor(reg, core::TypedValue::from_uint(5)));
  seq.ops.push_back(algolib::comparator_const_descriptor(reg, scratch, flag, 6));
  seq.ops.push_back(algolib::measurement_descriptor(reg));
  const auto result =
      core::submit(JobBundle::package(std::move(regs), std::move(seq), gate_ctx(64)));
  EXPECT_EQ(result.decoded[0].value.uint_value, 5u);
}

class QpeEndToEnd : public GateBackendTest, public ::testing::WithParamInterface<int> {};

TEST_P(QpeEndToEnd, EstimatesExactPhases) {
  // phase = k/16 is exactly representable on 4 counting qubits: QPE returns
  // it deterministically.
  const int k = GetParam();
  const core::QuantumDataType counting = algolib::make_phase_register("count", 4);
  const core::QuantumDataType eigen = algolib::make_flag_register("eigen");
  RegisterSet regs;
  regs.add(counting);
  regs.add(eigen);
  OperatorSequence seq;
  seq.ops.push_back(algolib::qpe_descriptor(counting, eigen, k / 16.0));
  seq.ops.push_back(algolib::measurement_descriptor(counting));
  const auto result =
      core::submit(JobBundle::package(std::move(regs), std::move(seq), gate_ctx(256)));
  ASSERT_EQ(result.decoded.size(), 1u);
  EXPECT_NEAR(result.decoded[0].value.real_value, k / 16.0, 1e-12);
}

INSTANTIATE_TEST_SUITE_P(Phases, QpeEndToEnd, ::testing::Values(0, 1, 3, 8, 15));

TEST_F(GateBackendTest, QpeInexactPhaseConcentratesNearby) {
  const core::QuantumDataType counting = algolib::make_phase_register("count", 4);
  const core::QuantumDataType eigen = algolib::make_flag_register("eigen");
  RegisterSet regs;
  regs.add(counting);
  regs.add(eigen);
  OperatorSequence seq;
  const double true_phase = 0.3;  // between 4/16 and 5/16
  seq.ops.push_back(algolib::qpe_descriptor(counting, eigen, true_phase));
  seq.ops.push_back(algolib::measurement_descriptor(counting));
  const auto result =
      core::submit(JobBundle::package(std::move(regs), std::move(seq), gate_ctx(8192)));
  double mass_near = 0.0;
  for (const auto& outcome : result.decoded) {
    double diff = std::abs(outcome.value.real_value - true_phase);
    diff = std::min(diff, 1.0 - diff);  // circular distance
    if (diff <= 1.0 / 16.0)
      mass_near += static_cast<double>(outcome.count);
  }
  EXPECT_GT(mass_near / 8192.0, 0.8);
}

TEST_F(GateBackendTest, SwapTestSeparatesEqualAndOrthogonal) {
  const core::QuantumDataType a = algolib::make_uint_register("a", 2);
  const core::QuantumDataType b = algolib::make_uint_register("b", 2);
  const core::QuantumDataType flag = algolib::make_flag_register("flag");
  // Identical states |00>,|00>: P(flag=0) = 1.
  {
    RegisterSet regs;
    regs.add(a);
    regs.add(b);
    regs.add(flag);
    OperatorSequence seq;
    seq.ops.push_back(algolib::swap_test_descriptor(a, b, flag));
    const auto result =
        core::submit(JobBundle::package(std::move(regs), std::move(seq), gate_ctx(4096)));
    EXPECT_NEAR(result.counts.probability("0"), 1.0, 1e-9);
  }
  // Orthogonal states |00>,|01>: P(flag=0) = 1/2.
  {
    RegisterSet regs;
    regs.add(a);
    regs.add(b);
    regs.add(flag);
    OperatorSequence seq;
    seq.ops.push_back(algolib::basis_state_prep_descriptor(b, core::TypedValue::from_uint(1)));
    seq.ops.push_back(algolib::swap_test_descriptor(a, b, flag));
    const auto result =
        core::submit(JobBundle::package(std::move(regs), std::move(seq), gate_ctx(8192)));
    EXPECT_NEAR(result.counts.probability("0"), 0.5, 0.03);
  }
}

TEST_F(GateBackendTest, ControlledSwapConditionallyExchanges) {
  const core::QuantumDataType reg = algolib::make_uint_register("x", 2);
  const core::QuantumDataType ctrl = algolib::make_flag_register("c");
  for (const bool control_on : {false, true}) {
    RegisterSet regs;
    regs.add(reg);
    regs.add(ctrl);
    OperatorSequence seq;
    seq.ops.push_back(algolib::basis_state_prep_descriptor(reg, core::TypedValue::from_uint(1)));
    if (control_on)
      seq.ops.push_back(
          algolib::basis_state_prep_descriptor(ctrl, core::TypedValue::from_bools({true})));
    seq.ops.push_back(algolib::controlled_swap_descriptor(reg, ctrl, 0, 1));
    seq.ops.push_back(algolib::measurement_descriptor(reg));
    const auto result =
        core::submit(JobBundle::package(std::move(regs), std::move(seq), gate_ctx(64)));
    EXPECT_EQ(result.decoded[0].value.uint_value, control_on ? 2u : 1u);
  }
}

TEST_F(GateBackendTest, PhaseGadgetMatchesRzz) {
  // On 2 carriers the gadget is exactly RZZ(angle).
  sim::Circuit gadget_circuit(2, 0);
  {
    core::QuantumDataType reg = algolib::make_uint_register("x", 2);
    core::RegisterSet regs;
    regs.add(reg);
    const backend::QubitResolver resolver(regs);
    backend::LoweringRegistry::instance().lower(
        algolib::phase_gadget_descriptor(reg, {0, 1}, 0.9), resolver, gadget_circuit);
  }
  sim::Circuit rzz_circuit(2, 0);
  rzz_circuit.h(0);
  rzz_circuit.h(1);
  rzz_circuit.rzz(0.9, 0, 1);
  sim::Circuit prep(2, 0);
  prep.h(0);
  prep.h(1);
  sim::Statevector a = sim::Engine().run_statevector(prep);
  for (const auto& inst : gadget_circuit.instructions()) a.apply(inst);
  const sim::Statevector b = sim::Engine().run_statevector(rzz_circuit);
  EXPECT_NEAR(a.fidelity(b), 1.0, 1e-9);
}

TEST_F(GateBackendTest, UnknownRepKindFailsCleanly) {
  core::QuantumDataType reg = algolib::make_uint_register("x", 2);
  RegisterSet regs;
  regs.add(reg);
  OperatorSequence seq;
  core::OperatorDescriptor op;
  op.name = "mystery";
  op.rep_kind = "MYSTERY_TEMPLATE";
  op.domain_qdt = "x";
  seq.ops.push_back(op);
  seq.ops.push_back(algolib::measurement_descriptor(reg));
  const JobBundle bundle = JobBundle::package(std::move(regs), std::move(seq), gate_ctx(16));
  EXPECT_THROW(core::submit(bundle), LoweringError);
}

TEST_F(GateBackendTest, MissingResultSchemaFailsCleanly) {
  core::QuantumDataType reg = algolib::make_uint_register("x", 2);
  RegisterSet regs;
  regs.add(reg);
  OperatorSequence seq;
  seq.ops.push_back(algolib::prep_uniform_descriptor(reg));
  const JobBundle bundle = JobBundle::package(std::move(regs), std::move(seq), gate_ctx(16));
  EXPECT_THROW(core::submit(bundle), LoweringError);
}

TEST_F(GateBackendTest, MetadataCarriesTranspileMetrics) {
  const core::QuantumDataType reg = algolib::make_phase_register("reg_phase", 5);
  Context ctx = gate_ctx(128);
  ctx.exec.target.basis_gates = {"sx", "rz", "cx"};
  ctx.exec.target.coupling_map = {{0, 1}, {1, 2}, {2, 3}, {3, 4}};
  RegisterSet regs;
  regs.add(reg);
  OperatorSequence seq;
  seq.ops.push_back(algolib::qft_descriptor(reg, {}));
  seq.ops.push_back(algolib::measurement_descriptor(reg));
  const auto result = core::submit(JobBundle::package(std::move(regs), std::move(seq), ctx));
  const json::Value& tmeta = result.metadata.at("transpile");
  EXPECT_GT(tmeta.get_int("twoq_after", 0), tmeta.get_int("twoq_before", 100));  // routing added
  EXPECT_GT(tmeta.get_int("swaps_inserted", 0), 0);
  EXPECT_GT(result.metadata.get_double("wall_time_ms", -1.0), 0.0);
}

}  // namespace
}  // namespace quml

// Unit tests for the JSON substrate: parser strictness, writer round trips,
// pointers, structural equality.

#include <gtest/gtest.h>

#include <clocale>
#include <cmath>
#include <cstdint>
#include <string>

#include "json/json.hpp"
#include "util/errors.hpp"

namespace quml::json {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(parse("null").is_null());
  EXPECT_EQ(parse("true").as_bool(), true);
  EXPECT_EQ(parse("false").as_bool(), false);
  EXPECT_EQ(parse("42").as_int(), 42);
  EXPECT_EQ(parse("-7").as_int(), -7);
  EXPECT_DOUBLE_EQ(parse("3.25").as_double(), 3.25);
  EXPECT_DOUBLE_EQ(parse("1e3").as_double(), 1000.0);
  EXPECT_DOUBLE_EQ(parse("-2.5e-2").as_double(), -0.025);
  EXPECT_EQ(parse("\"hi\"").as_string(), "hi");
}

TEST(JsonParse, IntVsDoubleDistinction) {
  EXPECT_TRUE(parse("5").is_int());
  EXPECT_TRUE(parse("5.0").is_double());
  EXPECT_TRUE(parse("5e0").is_double());
}

TEST(JsonParse, HugeIntegerDegradesToDouble) {
  const Value v = parse("123456789012345678901234567890");
  EXPECT_TRUE(v.is_double());
}

TEST(JsonParse, Int64BoundaryLiterals) {
  EXPECT_TRUE(parse("9223372036854775807").is_int());
  EXPECT_EQ(parse("9223372036854775807").as_int(), INT64_MAX);
  EXPECT_TRUE(parse("-9223372036854775808").is_int());
  EXPECT_EQ(parse("-9223372036854775808").as_int(), INT64_MIN);
  // One past either boundary degrades to double instead of failing.
  EXPECT_TRUE(parse("9223372036854775808").is_double());
  EXPECT_TRUE(parse("-9223372036854775809").is_double());
  EXPECT_DOUBLE_EQ(parse("9223372036854775808").as_double(), 9223372036854775808.0);
}

TEST(JsonParse, ExponentBoundaryLiterals) {
  EXPECT_DOUBLE_EQ(parse("1e308").as_double(), 1e308);
  EXPECT_DOUBLE_EQ(parse("-1.7976931348623157e308").as_double(), -1.7976931348623157e308);
  EXPECT_DOUBLE_EQ(parse("2.2250738585072014e-308").as_double(), 2.2250738585072014e-308);
  // Overflow past DBL_MAX is rejected; underflow collapses to (signed) zero.
  EXPECT_THROW(parse("1e309"), ParseError);
  EXPECT_THROW(parse("-1e999"), ParseError);
  EXPECT_THROW(parse("123456789e9999"), ParseError);
  EXPECT_DOUBLE_EQ(parse("1e-400").as_double(), 0.0);
  EXPECT_TRUE(std::signbit(parse("-1e-400").as_double()));
  EXPECT_DOUBLE_EQ(parse("0.0e999999999999999999").as_double(), 0.0);
}

/// Regression for the wire-facing locale bug: strtod/strtoll honored
/// LC_NUMERIC, so a comma-decimal locale misparsed "1.5" (stopping at the
/// '.').  std::from_chars is locale-independent by specification; this test
/// pins the behavior under such a locale when the host provides one.
TEST(JsonParse, NumbersAreLocaleIndependent) {
  const char* candidates[] = {"de_DE.UTF-8", "de_DE.utf8", "de_DE",
                              "fr_FR.UTF-8", "fr_FR.utf8", "fr_FR"};
  const char* previous = std::setlocale(LC_NUMERIC, nullptr);
  const std::string restore = previous != nullptr ? previous : "C";
  const char* applied = nullptr;
  for (const char* name : candidates)
    if (std::setlocale(LC_NUMERIC, name) != nullptr) {
      applied = name;
      break;
    }
  if (applied == nullptr)
    GTEST_SKIP() << "no comma-decimal locale available on this host";
  // Sanity: the chosen locale really uses ',' as its decimal separator.
  const lconv* conv = std::localeconv();
  if (conv == nullptr || conv->decimal_point == nullptr || conv->decimal_point[0] != ',') {
    std::setlocale(LC_NUMERIC, restore.c_str());
    GTEST_SKIP() << "locale lacks a comma decimal separator";
  }
  const Value v = parse(R"({"theta": 1.5, "phi": -2.25e-1, "n": 3})");
  std::setlocale(LC_NUMERIC, restore.c_str());
  EXPECT_DOUBLE_EQ(v.at("theta").as_double(), 1.5);
  EXPECT_DOUBLE_EQ(v.at("phi").as_double(), -0.225);
  EXPECT_EQ(v.at("n").as_int(), 3);
  // And the writer side round-trips without picking up the comma either.
  EXPECT_EQ(dump(parse("[1.5]")), "[1.5]");
}

TEST(JsonParse, NestedStructures) {
  const Value v = parse(R"({"a": [1, 2, {"b": true}], "c": {"d": null}})");
  EXPECT_EQ(v.at("a").size(), 3u);
  EXPECT_EQ(v.at("a")[2].at("b").as_bool(), true);
  EXPECT_TRUE(v.at("c").at("d").is_null());
}

TEST(JsonParse, ObjectOrderPreserved) {
  const Value v = parse(R"({"z": 1, "a": 2, "m": 3})");
  const Object& o = v.as_object();
  EXPECT_EQ(o[0].first, "z");
  EXPECT_EQ(o[1].first, "a");
  EXPECT_EQ(o[2].first, "m");
}

TEST(JsonParse, StringEscapes) {
  EXPECT_EQ(parse(R"("a\nb")").as_string(), "a\nb");
  EXPECT_EQ(parse(R"("tab\there")").as_string(), "tab\there");
  EXPECT_EQ(parse(R"("quote\"end")").as_string(), "quote\"end");
  EXPECT_EQ(parse(R"("back\\slash")").as_string(), "back\\slash");
  EXPECT_EQ(parse(R"("A")").as_string(), "A");
}

TEST(JsonParse, UnicodeEscapes) {
  EXPECT_EQ(parse(R"("é")").as_string(), "\xc3\xa9");          // é
  EXPECT_EQ(parse(R"("中")").as_string(), "\xe4\xb8\xad");      // 中
  EXPECT_EQ(parse(R"("😀")").as_string(), "\xf0\x9f\x98\x80");  // 😀 surrogate pair
}

TEST(JsonParse, RejectsMalformed) {
  EXPECT_THROW(parse(""), ParseError);
  EXPECT_THROW(parse("{"), ParseError);
  EXPECT_THROW(parse("[1,]"), ParseError);
  EXPECT_THROW(parse("{\"a\":1,}"), ParseError);
  EXPECT_THROW(parse("{'a': 1}"), ParseError);
  EXPECT_THROW(parse("01"), ParseError);
  EXPECT_THROW(parse("1."), ParseError);
  EXPECT_THROW(parse("tru"), ParseError);
  EXPECT_THROW(parse("\"unterminated"), ParseError);
  EXPECT_THROW(parse("1 2"), ParseError);
  EXPECT_THROW(parse(R"("\ud800")"), ParseError);  // unpaired surrogate
  EXPECT_THROW(parse("\"ctrl\x01char\""), ParseError);
}

TEST(JsonParse, ErrorCarriesPosition) {
  try {
    parse("{\n  \"a\": oops\n}");
    FAIL() << "expected ParseError";
  } catch (const ParseError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
}

TEST(JsonParse, DeepNestingGuard) {
  std::string deep;
  for (int i = 0; i < 600; ++i) deep += "[";
  EXPECT_THROW(parse(deep), ParseError);
}

TEST(JsonWrite, CompactRoundTrip) {
  const std::string text = R"({"a":[1,2.5,"x"],"b":{"c":true,"d":null}})";
  EXPECT_EQ(dump(parse(text)), text);
}

TEST(JsonWrite, DoubleAlwaysReparsesAsDouble) {
  const Value v(2.0);
  const Value back = parse(dump(v));
  EXPECT_TRUE(back.is_double());
  EXPECT_DOUBLE_EQ(back.as_double(), 2.0);
}

TEST(JsonWrite, EscapesControlCharacters) {
  const Value v(std::string("a\x01z"));
  EXPECT_EQ(dump(v), "\"a\\u0001z\"");
}

TEST(JsonWrite, PrettyIsReparseable) {
  const Value v = parse(R"({"a":[1,2],"b":{"c":"x"}})");
  EXPECT_EQ(parse(dump_pretty(v)), v);
}

class JsonRoundTrip : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonRoundTrip, ParseDumpParseIsIdentity) {
  const Value first = parse(GetParam());
  EXPECT_EQ(parse(dump(first)), first);
  EXPECT_EQ(parse(dump_pretty(first)), first);
}

INSTANTIATE_TEST_SUITE_P(Documents, JsonRoundTrip,
                         ::testing::Values(
                             "null", "true", "0", "-1", "3.5", "[]", "{}", "\"\"",
                             R"([1, [2, [3, [4]]]])",
                             R"({"width": 10, "phase_scale": "1/1024"})",
                             R"({"nested": {"deep": {"arr": [null, false, 1e-9]}}})",
                             R"(["é", "\t", "\\"])"));

TEST(JsonValue, ObjectHelpers) {
  Value v = Value::object();
  v.set("a", Value(1));
  v.set("b", Value("x"));
  v.set("a", Value(2));  // replace, not duplicate
  EXPECT_EQ(v.size(), 2u);
  EXPECT_EQ(v.at("a").as_int(), 2);
  EXPECT_TRUE(v.contains("b"));
  EXPECT_FALSE(v.contains("c"));
  EXPECT_TRUE(v.erase("b"));
  EXPECT_FALSE(v.erase("b"));
  EXPECT_EQ(v.size(), 1u);
}

TEST(JsonValue, GettersWithDefaults) {
  const Value v = parse(R"({"i": 7, "d": 1.5, "b": true, "s": "x"})");
  EXPECT_EQ(v.get_int("i", 0), 7);
  EXPECT_EQ(v.get_int("missing", -1), -1);
  EXPECT_DOUBLE_EQ(v.get_double("d", 0.0), 1.5);
  EXPECT_DOUBLE_EQ(v.get_double("i", 0.0), 7.0);  // int promotes
  EXPECT_EQ(v.get_bool("b", false), true);
  EXPECT_EQ(v.get_string("s", ""), "x");
  EXPECT_EQ(v.get_string("i", "fallback"), "fallback");  // wrong type -> default
}

TEST(JsonValue, TypeMismatchThrows) {
  const Value v = parse("[1]");
  EXPECT_THROW(v.as_object(), ValidationError);
  EXPECT_THROW(v.at("x"), ValidationError);
  EXPECT_THROW(v[5], ValidationError);
  EXPECT_THROW(parse("\"s\"").as_int(), ValidationError);
}

TEST(JsonValue, EqualityIsOrderInsensitiveForObjects) {
  EXPECT_EQ(parse(R"({"a":1,"b":2})"), parse(R"({"b":2,"a":1})"));
  EXPECT_NE(parse(R"({"a":1})"), parse(R"({"a":2})"));
  EXPECT_NE(parse("[1,2]"), parse("[2,1]"));  // arrays stay ordered
}

TEST(JsonValue, NumericCrossTypeEquality) {
  EXPECT_EQ(parse("1"), parse("1.0"));
  EXPECT_NE(parse("1"), parse("1.5"));
}

TEST(JsonPointer, Resolution) {
  const Value v = parse(R"({"exec": {"target": {"basis_gates": ["sx", "rz", "cx"]}}})");
  ASSERT_NE(resolve_pointer(v, "/exec/target/basis_gates/1"), nullptr);
  EXPECT_EQ(resolve_pointer(v, "/exec/target/basis_gates/1")->as_string(), "rz");
  EXPECT_EQ(resolve_pointer(v, ""), &v);
  EXPECT_EQ(resolve_pointer(v, "/missing"), nullptr);
  EXPECT_EQ(resolve_pointer(v, "/exec/target/basis_gates/9"), nullptr);
  EXPECT_EQ(resolve_pointer(v, "/exec/target/basis_gates/01"), nullptr);  // no leading zeros
  EXPECT_EQ(resolve_pointer(v, "no-slash"), nullptr);
}

TEST(JsonPointer, EscapedTokens) {
  const Value v = parse(R"({"a/b": {"c~d": 5}})");
  const Value* got = resolve_pointer(v, "/a~1b/c~0d");
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(got->as_int(), 5);
  EXPECT_EQ(escape_pointer_token("a/b~c"), "a~1b~0c");
}

}  // namespace
}  // namespace quml::json

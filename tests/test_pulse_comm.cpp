// Tests for the pulse and communication context services: schedule timing
// (virtual Z, drive/coupler channels, barriers), and multi-QPU partition
// planning with teleportation costs.

#include <gtest/gtest.h>

#include "comm/distributed.hpp"
#include "pulse/schedule.hpp"
#include "util/errors.hpp"

namespace quml {
namespace {

core::PulsePolicy default_pulse() {
  core::PulsePolicy p;
  p.enabled = true;
  return p;  // sx 35 ns, cx 300 ns, measure 1000 ns
}

TEST(Pulse, VirtualZHasZeroDuration) {
  sim::Circuit c(1, 0);
  c.rz(1.0, 0);
  c.z(0);
  c.s(0);
  const pulse::PulseSchedule schedule = pulse::lower_to_pulse(c, default_pulse());
  EXPECT_DOUBLE_EQ(schedule.total_duration_ns, 0.0);
  for (const auto& inst : schedule.instructions) {
    EXPECT_DOUBLE_EQ(inst.duration_ns, 0.0);
    EXPECT_DOUBLE_EQ(inst.amplitude, 0.0);
  }
}

TEST(Pulse, DrivePulsesAccumulateSerially) {
  sim::Circuit c(1, 0);
  c.sx(0);
  c.sx(0);
  c.rz(0.5, 0);  // free
  c.sx(0);
  const pulse::PulseSchedule schedule = pulse::lower_to_pulse(c, default_pulse());
  EXPECT_DOUBLE_EQ(schedule.total_duration_ns, 3 * 35.0);
}

TEST(Pulse, ParallelQubitsOverlap) {
  sim::Circuit c(2, 0);
  c.sx(0);
  c.sx(1);
  const pulse::PulseSchedule schedule = pulse::lower_to_pulse(c, default_pulse());
  EXPECT_DOUBLE_EQ(schedule.total_duration_ns, 35.0);
}

TEST(Pulse, CxSynchronizesAndUsesCouplerChannel) {
  sim::Circuit c(2, 0);
  c.sx(0);     // qubit 0 busy until 35
  c.cx(0, 1);  // starts at 35, runs 300
  const pulse::PulseSchedule schedule = pulse::lower_to_pulse(c, default_pulse());
  EXPECT_DOUBLE_EQ(schedule.total_duration_ns, 335.0);
  bool has_coupler = false;
  for (const auto& inst : schedule.instructions)
    if (inst.channel == "u0_1") has_coupler = true;
  EXPECT_TRUE(has_coupler);
}

TEST(Pulse, BarrierSynchronizesAllQubits) {
  sim::Circuit c(2, 0);
  c.sx(0);
  c.sx(0);  // qubit 0 to 70 ns
  c.barrier();
  c.sx(1);  // starts at 70 despite qubit 1 being free
  const pulse::PulseSchedule schedule = pulse::lower_to_pulse(c, default_pulse());
  EXPECT_DOUBLE_EQ(schedule.total_duration_ns, 105.0);
}

TEST(Pulse, MeasurementOnMChannel) {
  sim::Circuit c(1, 1);
  c.sx(0);
  c.measure(0, 0);
  const pulse::PulseSchedule schedule = pulse::lower_to_pulse(c, default_pulse());
  EXPECT_DOUBLE_EQ(schedule.total_duration_ns, 1035.0);
  EXPECT_EQ(schedule.instructions.back().channel, "m0");
}

TEST(Pulse, PolicyDurationsRespected) {
  core::PulsePolicy fast;
  fast.enabled = true;
  fast.sx_duration_ns = 10.0;
  fast.cx_duration_ns = 100.0;
  sim::Circuit c(2, 0);
  c.sx(0);
  c.cx(0, 1);
  EXPECT_DOUBLE_EQ(pulse::lower_to_pulse(c, fast).total_duration_ns, 110.0);
}

TEST(Pulse, RejectsUntranspiledWideGates) {
  sim::Circuit c(3, 0);
  c.ccx(0, 1, 2);
  EXPECT_THROW(pulse::lower_to_pulse(c, default_pulse()), LoweringError);
}

TEST(Pulse, ScheduleJsonShape) {
  sim::Circuit c(1, 0);
  c.sx(0);
  const json::Value doc = pulse::lower_to_pulse(c, default_pulse()).to_json();
  EXPECT_TRUE(doc.contains("instructions"));
  EXPECT_DOUBLE_EQ(doc.get_double("total_duration_ns", 0.0), 35.0);
  EXPECT_EQ(doc.get_int("num_channels", 0), 1);
}

// --- comm ---------------------------------------------------------------------

core::CommPolicy two_qpus(bool teleport = true) {
  core::CommPolicy policy;
  policy.allow_teleportation = teleport;
  policy.qpus = json::parse(R"([{"name":"left","qubits":2},{"name":"right","qubits":2}])");
  policy.epr_fidelity = 0.9;
  return policy;
}

TEST(Comm, ParsesQpuSpecs) {
  const auto qpus = comm::qpus_from_policy(two_qpus());
  ASSERT_EQ(qpus.size(), 2u);
  EXPECT_EQ(qpus[0].name, "left");
  EXPECT_EQ(qpus[1].qubits, 2);
}

TEST(Comm, KeepsInteractingQubitsTogether) {
  // Two independent Bell pairs: a good partition has zero non-local gates.
  sim::Circuit c(4, 0);
  c.h(0);
  c.cx(0, 1);
  c.h(2);
  c.cx(2, 3);
  const auto plan = comm::partition_circuit(c, comm::qpus_from_policy(two_qpus()), two_qpus());
  EXPECT_EQ(plan.nonlocal_2q, 0);
  EXPECT_EQ(plan.epr_pairs, 0);
  EXPECT_DOUBLE_EQ(plan.estimated_fidelity, 1.0);
  EXPECT_EQ(plan.qpu_of_qubit[0], plan.qpu_of_qubit[1]);
  EXPECT_EQ(plan.qpu_of_qubit[2], plan.qpu_of_qubit[3]);
}

TEST(Comm, PricesUnavoidableCuts) {
  // A 4-qubit ring on two 2-qubit QPUs must cut at least two edges.
  sim::Circuit c(4, 0);
  for (int i = 0; i < 4; ++i) c.cx(i, (i + 1) % 4);
  const auto plan = comm::partition_circuit(c, comm::qpus_from_policy(two_qpus()), two_qpus());
  EXPECT_GE(plan.nonlocal_2q, 2);
  EXPECT_EQ(plan.epr_pairs, plan.nonlocal_2q);
  EXPECT_EQ(plan.classical_bits, 2 * plan.nonlocal_2q);
  EXPECT_LT(plan.estimated_fidelity, 1.0);
}

TEST(Comm, CapacityChecks) {
  sim::Circuit c(6, 0);
  c.h(0);
  EXPECT_THROW(comm::partition_circuit(c, comm::qpus_from_policy(two_qpus()), two_qpus()),
               BackendError);
}

TEST(Comm, TeleportationDisabledForcesSingleQpu) {
  sim::Circuit c(4, 0);
  for (int i = 0; i < 4; ++i) c.cx(i, (i + 1) % 4);
  const auto policy = two_qpus(/*teleport=*/false);
  EXPECT_THROW(comm::partition_circuit(c, comm::qpus_from_policy(policy), policy), BackendError);
}

TEST(Comm, PlanJsonShape) {
  sim::Circuit c(4, 0);
  c.cx(0, 1);
  const auto plan = comm::partition_circuit(c, comm::qpus_from_policy(two_qpus()), two_qpus());
  const json::Value doc = plan.to_json();
  EXPECT_EQ(doc.at("qpu_of_qubit").size(), 4u);
  EXPECT_TRUE(doc.contains("epr_pairs"));
  EXPECT_TRUE(doc.contains("estimated_fidelity"));
}

}  // namespace
}  // namespace quml

#pragma once
// Shared randomized-circuit generator for the property and analysis suites.
// Extracted from test_properties.cpp so the analyzer's 32-seed clean-program
// suite fuzzes with the *same* vocabulary the differential properties run —
// a circuit the execution stack accepts must lint without error findings.

#include <algorithm>
#include <cstdint>
#include <vector>

#include "sim/circuit.hpp"
#include "util/rng.hpp"

namespace quml::sim::testgen {

struct GenOptions {
  int num_params = 0;      ///< > 0: rotations may take symbolic angles
  bool barriers = true;    ///< sprinkle fusion fences
  bool measures = false;   ///< append a trailing measure-all block
};

/// Random circuit over the full unitary vocabulary; with num_params > 0 a
/// third of the parameterized rotations carry a random linear expression
/// offset + scale * p[k] instead of a constant.
inline Circuit random_circuit(std::uint64_t seed, int n, int gates,
                              const GenOptions& opt = {}) {
  Rng rng(seed);
  Circuit c(n, opt.measures ? n : 0);
  const auto wire = [&] { return static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n))); };
  const auto other = [&](int q) {
    return (q + 1 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n - 1)))) % n;
  };
  const auto angle = [&]() -> Param {
    const double value = rng.next_double() * 6.0 - 3.0;
    if (opt.num_params > 0 && rng.next_below(3) == 0) {
      const int index = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(opt.num_params)));
      const double scale = rng.next_double() * 4.0 - 2.0;
      return Param::symbol(index, scale, value);
    }
    return Param::constant(value);
  };
  for (int i = 0; i < gates; ++i) {
    const int q = wire();
    const int r = other(q);
    switch (rng.next_below(18)) {
      case 0: c.h(q); break;
      case 1: c.x(q); break;
      case 2: c.s(q); break;
      case 3: c.tdg(q); break;
      case 4: c.sx(q); break;
      case 5: c.rz(angle(), q); break;
      case 6: c.rx(angle(), q); break;
      case 7: c.ry(angle(), q); break;
      case 8: c.p(angle(), q); break;
      case 9: c.u3(angle(), angle(), angle(), q); break;
      case 10: c.cx(q, r); break;
      case 11: c.cz(q, r); break;
      case 12: c.cp(angle(), q, r); break;
      case 13: c.rzz(angle(), q, r); break;
      case 14: c.swap(q, r); break;
      case 15: c.crz(angle(), q, r); break;
      case 16: {
        if (opt.barriers) {
          c.barrier();
        } else {
          c.sdg(q);
        }
        break;
      }
      case 17: {
        const int s = (std::max(q, r) + 1) % n;
        if (s != q && s != r)
          c.ccx(q, r, s);
        else
          c.cy(q, r);
        break;
      }
    }
  }
  if (opt.measures) c.measure_all();
  return c;
}

inline std::vector<double> random_binding(std::uint64_t seed, int count) {
  Rng rng(seed);
  std::vector<double> values(static_cast<std::size_t>(count));
  for (double& v : values) v = rng.next_double() * 6.0 - 3.0;
  return values;
}

}  // namespace quml::sim::testgen

// Cross-module integration tests: full artifact-file workflows (QDT.json +
// QOP.json + CTX.json -> job.json -> backend -> decoded result, the paper's
// Fig. 2/3 pipelines), context services attached through the backend, and
// scheduler-to-execution handoff.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "algolib/ising.hpp"
#include "algolib/qaoa.hpp"
#include "algolib/qft.hpp"
#include "backend/register_backends.hpp"
#include "core/registry.hpp"
#include "sched/scheduler.hpp"
#include "schema/descriptor_schemas.hpp"
#include "util/errors.hpp"

namespace quml {
namespace {

using algolib::Graph;

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override { backend::register_builtin_backends(); }

  static std::string write_temp(const std::string& name, const std::string& content) {
    const std::string path = ::testing::TempDir() + "/" + name;
    std::ofstream out(path);
    out << content;
    return path;
  }

  static json::Value read_json(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return json::parse(buffer.str());
  }
};

TEST_F(IntegrationTest, Fig2WorkflowFromJsonArtifacts) {
  // The full gate-path workflow of paper Fig. 2, driven by JSON files on
  // disk: QDT.json + QOP descriptors + CTX.json -> packaged job.json ->
  // IBM-style backend -> decoded counts.
  const std::string qdt_path = write_temp("QDT.json", R"({
    "$schema": "qdt-core.schema.json",
    "id": "ising_vars", "name": "s", "width": 4,
    "encoding_kind": "ISING_SPIN", "bit_order": "LSB_0",
    "measurement_semantics": "AS_BOOL"
  })");
  const std::string ctx_path = write_temp("CTX.json", R"({
    "$schema": "ctx.schema.json",
    "exec": {
      "engine": "gate.aer_simulator",
      "samples": 4096,
      "seed": 42,
      "target": {"basis_gates": ["sx", "rz", "cx"],
                 "coupling_map": [[0,1],[1,2],[2,3],[3,0]]},
      "options": {"optimization_level": 2}
    }
  })");

  const json::Value qdt_doc = read_json(qdt_path);
  schema::validator_for(qdt_doc).validate_or_throw(qdt_doc);
  const core::QuantumDataType qdt = core::QuantumDataType::from_json(qdt_doc);

  const json::Value ctx_doc = read_json(ctx_path);
  schema::validator_for(ctx_doc).validate_or_throw(ctx_doc);
  const core::Context ctx = core::Context::from_json(ctx_doc);

  const Graph graph = Graph::cycle(4);
  core::RegisterSet regs;
  regs.add(qdt);
  const core::JobBundle bundle = core::JobBundle::package(
      std::move(regs), algolib::qaoa_sequence(qdt, graph, algolib::ring_p1_angles()), ctx,
      "fig2-job");

  // Round-trip the packaged job through disk, as the paper's packaging
  // utility does (job.json).
  const std::string job_path = ::testing::TempDir() + "/job.json";
  bundle.save(job_path);
  const core::JobBundle loaded = core::JobBundle::load(job_path);
  const core::ExecutionResult result = core::submit(loaded);

  const double expected_cut = result.counts.expectation(
      [&](const std::string& bits) { return graph.cut_value_bits(bits); });
  EXPECT_GE(expected_cut, 2.9);
  EXPECT_LE(expected_cut, 3.3);
  std::remove(job_path.c_str());
}

TEST_F(IntegrationTest, Fig3WorkflowFromJsonArtifacts) {
  // The anneal-path workflow of paper Fig. 3 from a single job.json.
  const std::string job_text = R"({
    "$schema": "job.schema.json",
    "job_id": "fig3-job",
    "qdts": [{
      "$schema": "qdt-core.schema.json",
      "id": "ising_vars", "name": "s", "width": 4,
      "encoding_kind": "ISING_SPIN", "bit_order": "LSB_0",
      "measurement_semantics": "AS_BOOL"
    }],
    "operators": [{
      "$schema": "qod.schema.json",
      "name": "ISING", "rep_kind": "ISING_PROBLEM",
      "domain_qdt": "ising_vars", "codomain_qdt": "ising_vars",
      "params": {"h": [0.0, 0.0, 0.0, 0.0],
                 "J": [[0,1,1.0],[1,2,1.0],[2,3,1.0],[3,0,1.0]]},
      "result_schema": {"basis": "Z", "datatype": "AS_BOOL", "bit_significance": "LSB_0",
                        "clbit_order": ["ising_vars[0]", "ising_vars[1]",
                                        "ising_vars[2]", "ising_vars[3]"]}
    }],
    "context": {
      "$schema": "ctx.schema.json",
      "exec": {"engine": "anneal.neal_simulator", "seed": 42},
      "contexts": {"anneal": {"num_reads": 1000}}
    }
  })";
  const std::string path = write_temp("fig3_job.json", job_text);
  const core::JobBundle bundle = core::JobBundle::load(path);
  const core::ExecutionResult result = core::submit(bundle);
  EXPECT_EQ(result.counts.total(), 1000);
  const std::string top = result.counts.most_frequent();
  EXPECT_TRUE(top == "1010" || top == "0101") << top;
  EXPECT_DOUBLE_EQ(result.metadata.get_double("ground_energy", 0.0), -4.0);
}

TEST_F(IntegrationTest, QecContextAttachesResourceReport) {
  // Listing 5 made executable: the same logical program runs unmodified,
  // and the backend binds the qec block to the resource-model service.
  const core::QuantumDataType reg = algolib::make_ising_register("s", 4);
  const Graph graph = Graph::cycle(4);
  core::Context ctx;
  ctx.exec.engine = "gate.statevector_simulator";
  ctx.exec.samples = 512;
  core::QecPolicy qec;
  qec.code_family = "surface";
  qec.distance = 7;
  qec.allocator = "auto";
  qec.logical_gate_set = {"H", "S", "CNOT", "T", "MEASURE_Z"};
  ctx.qec = qec;

  core::RegisterSet regs;
  regs.add(reg);
  const core::ExecutionResult result = core::submit(core::JobBundle::package(
      std::move(regs), algolib::qaoa_sequence(reg, graph, algolib::ring_p1_angles()), ctx));

  const json::Value& report = result.metadata.at("services").at("qec");
  EXPECT_EQ(report.get_int("distance", 0), 7);
  EXPECT_EQ(report.get_int("patches", 0), 4);
  EXPECT_GE(report.get_int("physical_qubits", 0), 4 * 97);
  // Decoded results are identical in distribution to a no-QEC run (logical
  // semantics unchanged) -- same seed, same counts.
  core::Context plain = ctx;
  plain.qec.reset();
  core::RegisterSet regs2;
  regs2.add(reg);
  const core::ExecutionResult no_qec = core::submit(core::JobBundle::package(
      std::move(regs2), algolib::qaoa_sequence(reg, graph, algolib::ring_p1_angles()), plain));
  EXPECT_EQ(result.counts.to_json(), no_qec.counts.to_json());
}

TEST_F(IntegrationTest, PulseContextReportsDuration) {
  const core::QuantumDataType reg = algolib::make_ising_register("s", 4);
  core::Context ctx;
  ctx.exec.engine = "gate.statevector_simulator";
  ctx.exec.samples = 128;
  ctx.exec.target.basis_gates = {"sx", "rz", "cx"};
  core::PulsePolicy pulse;
  pulse.enabled = true;
  ctx.pulse = pulse;
  core::RegisterSet regs;
  regs.add(reg);
  const core::ExecutionResult result = core::submit(core::JobBundle::package(
      std::move(regs),
      algolib::qaoa_sequence(reg, Graph::cycle(4), algolib::ring_p1_angles()), ctx));
  const json::Value& report = result.metadata.at("services").at("pulse");
  EXPECT_GT(report.get_double("total_duration_ns", 0.0), 0.0);
  EXPECT_GT(report.get_int("num_channels", 0), 0);
}

TEST_F(IntegrationTest, QecGateSetViolationSurfacesBeforeExecution) {
  const core::QuantumDataType reg = algolib::make_ising_register("s", 4);
  core::Context ctx;
  ctx.exec.engine = "gate.statevector_simulator";
  core::QecPolicy qec;
  qec.logical_gate_set = {"H", "CNOT", "MEASURE_Z"};  // QAOA needs rotations (T)
  ctx.qec = qec;
  core::RegisterSet regs;
  regs.add(reg);
  const core::JobBundle bundle = core::JobBundle::package(
      std::move(regs),
      algolib::qaoa_sequence(reg, Graph::cycle(4), algolib::ring_p1_angles()), ctx);
  EXPECT_THROW(core::submit(bundle), BackendError);
}

TEST_F(IntegrationTest, SchedulerDecisionExecutesOnChosenBackend) {
  // Cost-hint scheduling decision feeds straight back into the context, and
  // the chosen engine runs the job (the HPC workflow the paper motivates).
  const core::QuantumDataType reg = algolib::make_ising_register("s", 4);
  core::RegisterSet regs;
  regs.add(reg);
  core::OperatorSequence seq;
  seq.ops.push_back(algolib::maxcut_ising_descriptor(reg, Graph::cycle(4)));
  core::Context ctx;
  ctx.exec.engine = "";  // to be filled by the scheduler
  ctx.exec.samples = 200;
  core::AnnealPolicy anneal;
  anneal.num_reads = 200;
  anneal.num_sweeps = 100;
  ctx.anneal = anneal;
  core::JobBundle bundle = core::JobBundle::package(std::move(regs), std::move(seq), ctx);

  sched::BackendCapability gate_cap;
  gate_cap.name = "gate.statevector_simulator";
  gate_cap.kind = "gate";
  gate_cap.num_qubits = 26;
  sched::BackendCapability anneal_cap;
  anneal_cap.name = "anneal.simulated_annealer";
  anneal_cap.kind = "anneal";
  anneal_cap.num_qubits = 64;

  const sched::Decision decision = sched::choose_backend(bundle, {gate_cap, anneal_cap});
  EXPECT_EQ(decision.backend, "anneal.simulated_annealer");
  bundle.context->exec.engine = decision.backend;
  const core::ExecutionResult result = core::submit(bundle);
  EXPECT_EQ(result.counts.total(), 200);
}

TEST_F(IntegrationTest, EverythingValidatesAgainstEmittedSchemas) {
  // Round-trip every artifact kind through its embedded schema validator.
  const core::QuantumDataType reg = algolib::make_phase_register("reg_phase", 10);
  EXPECT_NO_THROW(schema::qdt_validator().validate_or_throw(reg.to_json()));
  const core::OperatorDescriptor qft = algolib::qft_descriptor(reg, {});
  EXPECT_NO_THROW(schema::qod_validator().validate_or_throw(qft.to_json()));
  core::Context ctx;
  ctx.exec.engine = "gate.statevector_simulator";
  core::QecPolicy qec;
  ctx.qec = qec;
  EXPECT_NO_THROW(schema::ctx_validator().validate_or_throw(ctx.to_json()));
  core::RegisterSet regs;
  regs.add(reg);
  core::OperatorSequence seq;
  seq.ops.push_back(qft);
  seq.ops.push_back(algolib::measurement_descriptor(reg));
  const core::JobBundle bundle = core::JobBundle::package(std::move(regs), std::move(seq), ctx);
  EXPECT_NO_THROW(schema::job_validator().validate_or_throw(bundle.to_json()));
}

}  // namespace
}  // namespace quml

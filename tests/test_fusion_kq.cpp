// Randomized and directed coverage for the generalized k-qubit fusion pass
// (sim/fusion) and the statevector kernels backing it (apply_matrix,
// apply_diag, apply_monomial).  The load-bearing property: a fused program
// applies the *identical* unitary — amplitudes agree with the gate-by-gate
// native path to 1e-12, global phase included — across random circuits,
// every cap k in 2..5, adversarial operand orders, and boundary wires.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "backend/lowering.hpp"
#include "sim/engine.hpp"
#include "sim/fusion.hpp"
#include "sim/statevector.hpp"
#include "util/errors.hpp"
#include "util/rng.hpp"

namespace quml::sim {
namespace {

/// Gate-by-gate reference: native kernels only, no fusion.
void apply_gate_by_gate(Statevector& sv, const Circuit& c) {
  for (const auto& inst : c.instructions())
    if (inst.gate != Gate::Barrier) sv.apply(inst);
}

double max_amp_diff(const Statevector& a, const Statevector& b) {
  double md = 0.0;
  for (std::uint64_t i = 0; i < a.dim(); ++i)
    md = std::max(md, std::abs(a.amplitude(i) - b.amplitude(i)));
  return md;
}

/// Random circuit over the full gate vocabulary.  Operand orders are drawn
/// freely (control above or below target) and wires 0 and n-1 participate
/// like any other, so boundary-wire and descending-operand cases occur
/// throughout.
Circuit random_circuit(std::uint64_t seed, int n, int gates) {
  Rng rng(seed);
  Circuit c(n, 0);
  const auto wire = [&] { return static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n))); };
  const auto other = [&](int q) {
    const int r = (q + 1 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(n - 1)))) % n;
    return r;
  };
  const auto angle = [&] { return rng.next_double() * 6.0 - 3.0; };
  for (int i = 0; i < gates; ++i) {
    const int q = wire();
    const int r = other(q);
    switch (rng.next_below(16)) {
      case 0: c.h(q); break;
      case 1: c.x(q); break;
      case 2: c.s(q); break;
      case 3: c.t(q); break;
      case 4: c.rz(angle(), q); break;
      case 5: c.rx(angle(), q); break;
      case 6: c.p(angle(), q); break;
      case 7: c.u3(rng.next_double() * 3, angle(), angle(), q); break;
      case 8: c.cx(q, r); break;
      case 9: c.cz(q, r); break;
      case 10: c.cp(angle(), q, r); break;
      case 11: c.rzz(angle(), q, r); break;
      case 12: c.swap(q, r); break;
      case 13: c.crz(angle(), q, r); break;
      case 14: {
        const int s = other(r) == q ? (std::max(q, r) + 1) % c.num_qubits() : other(r);
        if (s != q && s != r) {
          c.ccx(q, r, s);
          break;
        }
        c.cy(q, r);
        break;
      }
      case 15: {
        const int s = other(r) == q ? (std::max(q, r) + 1) % c.num_qubits() : other(r);
        if (s != q && s != r) {
          c.cswap(q, r, s);
          break;
        }
        c.cz(q, r);
        break;
      }
    }
  }
  return c;
}

// --- the core property: fused == unfused to 1e-12, for caps k = 2..5 --------

class FusionKqProperty : public ::testing::TestWithParam<int> {};

TEST_P(FusionKqProperty, FusedMatchesGateByGateAtEveryCap) {
  const int n = 7;
  const Circuit c = random_circuit(static_cast<std::uint64_t>(GetParam()), n, 150);
  Statevector reference(n);
  apply_gate_by_gate(reference, c);
  for (int k = 2; k <= 5; ++k) {
    FusionOptions opt;
    opt.max_qubits = k;
    opt.max_structured_qubits = k;
    FusionStats stats;
    const auto ops = fuse_unitaries(c, opt, &stats);
    Statevector fused(n);
    apply_fused(fused, ops);
    EXPECT_LT(max_amp_diff(reference, fused), 1e-12) << "cap k=" << k;
    EXPECT_EQ(stats.gates_in, c.size()) << "cap k=" << k;
    EXPECT_LE(stats.ops_out, stats.gates_in) << "cap k=" << k;
    if (stats.kq_blocks > 0) {
      EXPECT_LE(stats.max_block_qubits, k);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomCircuits, FusionKqProperty, ::testing::Range(0, 24));

TEST(FusionKq, DefaultOptionsOnWiderRegisters) {
  // Default caps (dense 4 / structured 14) on 10 wires: structured blocks
  // wider than the dense cap must still be exact.
  for (const std::uint64_t seed : {7ull, 8ull, 9ull}) {
    const Circuit c = random_circuit(seed, 10, 200);
    Statevector reference(10);
    apply_gate_by_gate(reference, c);
    Statevector fused(10);
    FusionStats stats;
    apply_fused(fused, fuse_unitaries(c, &stats));
    EXPECT_LT(max_amp_diff(reference, fused), 1e-12) << "seed " << seed;
  }
}

TEST(FusionKq, StructuredOnlyCircuitsFuseWide) {
  // A circuit of monomial/diagonal gates only collapses into a handful of
  // wide structured blocks — and stays exact.
  Rng rng(31);
  Circuit c(10, 0);
  for (int i = 0; i < 120; ++i) {
    const int q = static_cast<int>(rng.next_below(10));
    const int r = (q + 1 + static_cast<int>(rng.next_below(9))) % 10;
    switch (rng.next_below(5)) {
      case 0: c.cx(q, r); break;
      case 1: c.swap(q, r); break;
      case 2: c.cp(rng.next_double() * 6 - 3, q, r); break;
      case 3: c.rzz(rng.next_double() * 6 - 3, q, r); break;
      case 4: c.x(q); break;
    }
  }
  Statevector reference(10);
  apply_gate_by_gate(reference, c);
  Statevector fused(10);
  FusionStats stats;
  apply_fused(fused, fuse_unitaries(c, &stats));
  EXPECT_LT(max_amp_diff(reference, fused), 1e-12);
  EXPECT_GT(stats.kq_blocks, 0u);
  EXPECT_GT(stats.fused_multiq, 60u);  // the bulk of the traffic is absorbed
  EXPECT_LT(stats.ops_out, c.size() / 3);
}

// --- adversarial operand orders and boundary wires ---------------------------

TEST(FusionKq, AdversarialOperandOrders) {
  // Descending and interleaved operand lists on the extreme wires.
  const int n = 6;
  Circuit c(n, 0);
  for (int q = 0; q < n; ++q) c.h(q);
  c.cx(5, 0);
  c.cp(0.7, 4, 1);
  c.ccx(5, 0, 3);
  c.cswap(3, 5, 1);
  c.swap(5, 2);
  c.rzz(0.9, 5, 0);
  c.crz(1.1, 4, 0);
  c.cy(5, 1);
  c.cx(0, 5);
  c.t(5);
  c.t(0);
  c.cp(-2.1, 5, 0);
  Statevector reference(n);
  apply_gate_by_gate(reference, c);
  for (int k = 2; k <= 5; ++k) {
    FusionOptions opt;
    opt.max_qubits = k;
    opt.max_structured_qubits = std::max(k, 6);
    Statevector fused(n);
    apply_fused(fused, fuse_unitaries(c, opt));
    EXPECT_LT(max_amp_diff(reference, fused), 1e-12) << "cap k=" << k;
  }
}

TEST(FusionKq, BoundaryWirePairs) {
  // Runs confined to the bottom pair, the top pair, and the {0, n-1} pair.
  const int n = 8;
  for (const auto& [a, b] : {std::pair{0, 1}, std::pair{n - 2, n - 1}, std::pair{0, n - 1}}) {
    Circuit c(n, 0);
    c.h(a);
    c.h(b);
    c.cx(a, b);
    c.t(b);
    c.cp(0.4, b, a);
    c.rzz(-1.3, a, b);
    c.cx(b, a);
    c.rx(0.8, a);
    c.swap(a, b);
    Statevector reference(n);
    apply_gate_by_gate(reference, c);
    Statevector fused(n);
    apply_fused(fused, fuse_unitaries(c));
    EXPECT_LT(max_amp_diff(reference, fused), 1e-12) << "pair " << a << "," << b;
  }
}

// --- the kernels directly -----------------------------------------------------

Statevector random_state(int n, std::uint64_t seed) {
  Statevector sv(n);
  Rng rng(seed);
  for (int q = 0; q < n; ++q) {
    sv.apply_1q(q, gate_matrix_1q(Gate::H, nullptr));
    const double t[3] = {rng.next_double() * 3, rng.next_double() * 6 - 3,
                         rng.next_double() * 6 - 3};
    sv.apply_1q(q, gate_matrix_1q(Gate::U3, t));
  }
  return sv;
}

TEST(ApplyMatrix, MatchesNativeKernelsInBothOperandOrders) {
  const int n = 6;
  const Instruction gates[] = {
      {Gate::CX, {1, 4}, {}, {}},      {Gate::CX, {4, 1}, {}, {}},
      {Gate::CP, {0, 5}, {0.83}, {}},  {Gate::SWAP, {5, 2}, {}, {}},
      {Gate::RZZ, {3, 0}, {-1.7}, {}}, {Gate::CCX, {5, 2, 0}, {}, {}},
      {Gate::CSWAP, {2, 5, 1}, {}, {}},
  };
  for (const Instruction& inst : gates) {
    Statevector a = random_state(n, 11);
    Statevector b = a;
    a.apply(inst);
    const std::vector<c64> u = gate_matrix(inst.gate, inst.params.data());
    b.apply_matrix(inst.qubits, u.data());
    EXPECT_LT(max_amp_diff(a, b), 1e-12) << gate_name(inst.gate);
  }
}

TEST(ApplyMatrix, K2FastPathAdjacentAndSpreadSupports) {
  // U = u3(b) ⊗ u3(a) applied as one 4x4 equals the two 1q gates, on adjacent
  // and maximally spread supports, in both operand orders.
  const int n = 6;
  const double pa[3] = {0.7, -0.3, 1.9};
  const double pb[3] = {2.1, 0.4, -0.8};
  const Mat2 ua = gate_matrix_1q(Gate::U3, pa);
  const Mat2 ub = gate_matrix_1q(Gate::U3, pb);
  std::vector<c64> u(16);
  for (int r = 0; r < 4; ++r)
    for (int c = 0; c < 4; ++c)
      u[static_cast<std::size_t>(4 * r + c)] = ua.m[r & 1][c & 1] * ub.m[(r >> 1) & 1][(c >> 1) & 1];
  for (const auto& [qa, qb] : {std::pair{0, 1}, std::pair{2, 3}, std::pair{0, 5}, std::pair{5, 0}}) {
    Statevector a = random_state(n, 23);
    Statevector b = a;
    a.apply_1q(qa, ua);
    a.apply_1q(qb, ub);
    const int qs[2] = {qa, qb};
    b.apply_matrix(qs, u.data());
    EXPECT_LT(max_amp_diff(a, b), 1e-12) << qa << "," << qb;
  }
}

TEST(ApplyMatrix, K1DelegatesAndValidates) {
  Statevector sv(3);
  const Mat2 h = gate_matrix_1q(Gate::H, nullptr);
  const c64 u[4] = {h.m[0][0], h.m[0][1], h.m[1][0], h.m[1][1]};
  const int q[1] = {1};
  sv.apply_matrix(q, u);
  EXPECT_NEAR(std::abs(sv.amplitude(0)), 1.0 / std::sqrt(2.0), 1e-12);
  const int dup[2] = {1, 1};
  EXPECT_THROW(sv.apply_matrix(dup, u), ValidationError);
  const int oob[2] = {0, 3};
  EXPECT_THROW(sv.apply_matrix(oob, u), ValidationError);
  EXPECT_THROW(sv.apply_matrix(std::span<const int>{}, u), ValidationError);
}

TEST(ApplyDiag, MatchesDenseOnAdversarialSupport) {
  const int n = 7;
  Rng rng(5);
  const int qs[3] = {6, 0, 3};  // descending-ish, boundary wires
  std::vector<c64> d(8);
  for (auto& v : d) v = unit_phase(rng.next_double() * 6 - 3);
  d[2] = c64(1.0, 0.0);  // exercise the unit-skip
  std::vector<c64> u(64, c64(0.0, 0.0));
  for (int m = 0; m < 8; ++m) u[static_cast<std::size_t>(8 * m + m)] = d[static_cast<std::size_t>(m)];
  Statevector a = random_state(n, 41);
  Statevector b = a;
  a.apply_matrix(qs, u.data());
  b.apply_diag(qs, d.data());
  EXPECT_LT(max_amp_diff(a, b), 1e-12);
}

TEST(ApplyDiag, ContiguousSupportFastPaths) {
  // Low contiguous support (elementwise path) and high contiguous support
  // (run-constant path) both match the generic dense application.
  const int n = 8;
  Rng rng(6);
  for (const int base : {0, 4}) {
    const int qs[4] = {base, base + 1, base + 2, base + 3};
    std::vector<c64> d(16);
    for (auto& v : d) v = unit_phase(rng.next_double() * 6 - 3);
    d[0] = c64(1.0, 0.0);
    std::vector<c64> u(256, c64(0.0, 0.0));
    for (int m = 0; m < 16; ++m)
      u[static_cast<std::size_t>(16 * m + m)] = d[static_cast<std::size_t>(m)];
    Statevector a = random_state(n, 57);
    Statevector b = a;
    a.apply_matrix(qs, u.data());
    b.apply_diag(qs, d.data());
    EXPECT_LT(max_amp_diff(a, b), 1e-12) << "base " << base;
  }
}

TEST(ApplyMonomial, CxChainPermutationAndValidation) {
  const int n = 6;
  // Compose cx(0,1); cx(1,2); cx(2,3) as local permutation on {0,1,2,3}.
  const int qs[4] = {0, 1, 2, 3};
  int src[16];
  c64 phase[16];
  for (int m = 0; m < 16; ++m) phase[m] = c64(1.0, 0.0);
  // Forward-simulate each basis input through the three CXs; out[y] reads in[x].
  for (int x = 0; x < 16; ++x) {
    int y = x;
    if (y & 1) y ^= 2;
    if (y & 2) y ^= 4;
    if (y & 4) y ^= 8;
    src[y] = x;
  }
  Statevector a = random_state(n, 77);
  Statevector b = a;
  a.apply(Instruction{Gate::CX, {0, 1}, {}, {}, {}});
  a.apply(Instruction{Gate::CX, {1, 2}, {}, {}, {}});
  a.apply(Instruction{Gate::CX, {2, 3}, {}, {}, {}});
  b.apply_monomial(qs, src, phase);
  EXPECT_LT(max_amp_diff(a, b), 1e-12);
  // Non-permutation src tables are rejected.
  int bad[16];
  for (int m = 0; m < 16; ++m) bad[m] = 0;
  EXPECT_THROW(b.apply_monomial(qs, bad, phase), ValidationError);
}

// --- fusion statistics on known circuits --------------------------------------

TEST(FusionStatsKq, QftCollapsesCascades) {
  const int n = 12;
  Circuit c(n, 0);
  std::vector<int> qs(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) qs[static_cast<std::size_t>(i)] = i;
  backend::append_qft(c, qs, 0, true, false);
  FusionStats stats;
  const auto ops = fuse_unitaries(c, &stats);
  EXPECT_EQ(stats.gates_in, c.size());
  // The CP cascades (n(n-1)/2 = 66 gates) collapse into a handful of wide
  // diagonal blocks; the plan is a fraction of the gate count.
  EXPECT_GT(stats.kq_blocks, 0u);
  EXPECT_GE(stats.max_block_qubits, 4);
  EXPECT_GE(stats.diag_runs, 1u);
  EXPECT_GT(stats.fused_multiq, 40u);
  EXPECT_LT(stats.ops_out, c.size() / 2);
  Statevector reference(n);
  apply_gate_by_gate(reference, c);
  Statevector fused(n);
  apply_fused(fused, ops);
  EXPECT_LT(max_amp_diff(reference, fused), 1e-12);
}

TEST(FusionStatsKq, QaoaCostLayerIsOneDiagonalSweep) {
  // One QAOA layer on a 10-wire ring: the whole rzz cost layer is diagonal
  // and collapses into a single wide block per layer; the rx mixer stays 1q.
  const int n = 10, layers = 2;
  Circuit c(n, 0);
  for (int l = 0; l < layers; ++l) {
    for (int q = 0; q < n; ++q) c.rzz(0.37 * (l + 1), q, (q + 1) % n);
    for (int q = 0; q < n; ++q) c.rx(0.21 * (l + 1), q);
  }
  FusionStats stats;
  const auto ops = fuse_unitaries(c, &stats);
  EXPECT_EQ(stats.gates_in, static_cast<std::size_t>(2 * n * layers));
  EXPECT_EQ(stats.diag_runs, static_cast<std::size_t>(layers));  // one block per cost layer
  EXPECT_EQ(stats.fused_multiq, static_cast<std::size_t>(n * layers));  // every rzz absorbed
  EXPECT_EQ(stats.max_block_qubits, n);
  EXPECT_EQ(stats.ops_out, static_cast<std::size_t>(layers * (n + 1)));  // n rx + 1 diag per layer
  Statevector reference(n);
  apply_gate_by_gate(reference, c);
  Statevector fused(n);
  apply_fused(fused, ops);
  EXPECT_LT(max_amp_diff(reference, fused), 1e-12);
}

TEST(FusionKq, ExactInverseRunsVanish) {
  // z;z and s;sdg compose to *bit-exact* identity diagonals (entries are
  // exact constants); rz(t);rz(-t) may differ by an ulp depending on the
  // build's floating-point contraction, so it is deliberately not used here.
  Circuit c(2, 0);
  c.z(0);
  c.z(0);
  c.s(1);
  c.sdg(1);
  FusionStats stats;
  const auto ops = fuse_unitaries(c, &stats);
  EXPECT_TRUE(ops.empty());
  EXPECT_EQ(stats.gates_in, 4u);
  EXPECT_EQ(stats.ops_out, 0u);
}

TEST(FusionOptionsKq, EnvOverridesAndClamping) {
  setenv("QUML_FUSION_MAX_QUBITS", "2", 1);
  setenv("QUML_FUSION_MAX_STRUCTURED_QUBITS", "6", 1);
  const FusionOptions opt = FusionOptions::from_env();
  EXPECT_EQ(opt.max_qubits, 2);
  EXPECT_EQ(opt.max_structured_qubits, 6);
  unsetenv("QUML_FUSION_MAX_QUBITS");
  unsetenv("QUML_FUSION_MAX_STRUCTURED_QUBITS");
  const FusionOptions defaults = FusionOptions::from_env();
  EXPECT_EQ(defaults.max_qubits, 4);
  EXPECT_EQ(defaults.max_structured_qubits, 14);

  // Malformed values fall back to the defaults: partial parses ("2x"), and —
  // regression — out-of-int-range literals, which the strtol predecessor cast
  // to int unchecked (e.g. "4294967298" wrapped to 2 on LP64).
  setenv("QUML_FUSION_MAX_QUBITS", "2x", 1);
  setenv("QUML_FUSION_MAX_STRUCTURED_QUBITS", "4294967298", 1);
  const FusionOptions malformed = FusionOptions::from_env();
  EXPECT_EQ(malformed.max_qubits, defaults.max_qubits);
  EXPECT_EQ(malformed.max_structured_qubits, defaults.max_structured_qubits);
  setenv("QUML_FUSION_MAX_QUBITS", "99999999999999999999", 1);
  EXPECT_EQ(FusionOptions::from_env().max_qubits, defaults.max_qubits);
  unsetenv("QUML_FUSION_MAX_QUBITS");
  unsetenv("QUML_FUSION_MAX_STRUCTURED_QUBITS");

  // Absurd caps are clamped inside the pass rather than crashing the kernels.
  FusionOptions wild;
  wild.max_qubits = 99;
  wild.max_structured_qubits = 99;
  const Circuit c = random_circuit(3, 6, 60);
  Statevector reference(6);
  apply_gate_by_gate(reference, c);
  Statevector fused(6);
  FusionStats stats;
  apply_fused(fused, fuse_unitaries(c, wild, &stats));
  EXPECT_LT(max_amp_diff(reference, fused), 1e-12);
  EXPECT_LE(stats.max_block_qubits, Statevector::kMaxKernelQubits);
}

TEST(FusionKq, EngineRunCountsUnchangedByFusionWidth) {
  // Shot histograms must be identical whatever the caps, because fusion is
  // exact and the RNG stream never depends on the plan shape.
  Circuit c(5, 5);
  Rng rng(9);
  for (int i = 0; i < 40; ++i) {
    const int q = static_cast<int>(rng.next_below(5));
    if (i % 3 == 0) c.h(q);
    else if (i % 3 == 1) c.cx(q, (q + 1) % 5);
    else c.cp(0.3 * i, q, (q + 2) % 5);
  }
  c.measure_all();
  setenv("QUML_FUSION_MAX_STRUCTURED_QUBITS", "1", 1);
  setenv("QUML_FUSION_MAX_QUBITS", "1", 1);
  const CountMap narrow = Engine().run_counts(c, 512, 4242);
  unsetenv("QUML_FUSION_MAX_STRUCTURED_QUBITS");
  unsetenv("QUML_FUSION_MAX_QUBITS");
  const CountMap wide = Engine().run_counts(c, 512, 4242);
  EXPECT_EQ(narrow, wide);
}

}  // namespace
}  // namespace quml::sim

// Parameterized circuits and the bind-once/run-many sweep stack: sim::Param
// plumbing, SweepPlan construction/eligibility, the 1q layer kernel, bundle
// parameter declarations ($param references, bind_bundle), symbolic
// transpilation, and svc::ExecutionService::submit_sweep end to end.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "algolib/graph.hpp"
#include "algolib/ising.hpp"
#include "algolib/qaoa.hpp"
#include "algolib/qft.hpp"
#include "algolib/stateprep.hpp"
#include "backend/lowering.hpp"
#include "backend/register_backends.hpp"
#include "core/params.hpp"
#include "core/registry.hpp"
#include "sim/engine.hpp"
#include "sim/sweep.hpp"
#include "svc/execution_service.hpp"
#include "transpile/transpiler.hpp"
#include "util/errors.hpp"

namespace quml {
namespace {

using sim::Circuit;
using sim::Gate;
using sim::Param;
using sim::Statevector;

double max_amp_diff(const Statevector& a, const Statevector& b) {
  double md = 0.0;
  for (std::uint64_t i = 0; i < a.dim(); ++i)
    md = std::max(md, std::abs(a.amplitude(i) - b.amplitude(i)));
  return md;
}

// --- sim::Param / Circuit plumbing -------------------------------------------

TEST(ParamTest, LinearAlgebraAndBinding) {
  const Param p = Param::symbol(2, 1.5, 0.25);
  const Param q = (-p * 2.0) + 1.0;
  EXPECT_EQ(q.index, 2);
  EXPECT_DOUBLE_EQ(q.scale, -3.0);
  EXPECT_DOUBLE_EQ(q.offset, 0.5);
  const std::vector<double> binding{0.0, 0.0, 2.0};
  EXPECT_DOUBLE_EQ(q.value(binding), -5.5);
  EXPECT_DOUBLE_EQ(Param::constant(0.75).value(binding), 0.75);
}

TEST(ParamTest, CircuitTracksParametersThroughBuildersAndBind) {
  Circuit c(2, 0);
  c.rx(Param::symbol(1, 2.0), 0);
  c.rzz(Param::symbol(0), 0, 1);
  c.cp(0.5, 0, 1);  // constant stays numeric
  EXPECT_TRUE(c.is_parameterized());
  EXPECT_EQ(c.num_parameters(), 2);
  EXPECT_TRUE(c.instructions()[0].is_parameterized());
  EXPECT_FALSE(c.instructions()[2].is_parameterized());

  const Circuit bound = c.bind(std::vector<double>{0.3, -0.7});
  EXPECT_FALSE(bound.is_parameterized());
  EXPECT_DOUBLE_EQ(bound.instructions()[0].params[0], -1.4);
  EXPECT_DOUBLE_EQ(bound.instructions()[1].params[0], 0.3);
  EXPECT_THROW(c.bind(std::vector<double>{0.1}), ValidationError);
}

TEST(ParamTest, InverseAppendAndPushPreserveSymbols) {
  Circuit c(2, 0);
  c.rz(Param::symbol(0, 2.0, 1.0), 0);
  c.u3(Param::symbol(1), Param::constant(0.2), Param::symbol(2, -1.0), 1);
  const Circuit inv = c.inverse();
  EXPECT_EQ(inv.num_parameters(), 3);
  // Bound inverse must invert the bound circuit exactly.
  const std::vector<double> v{0.4, -1.1, 0.9};
  Circuit round(2, 0);
  round.append(c.bind(v), {0, 1});
  round.append(inv.bind(v), {0, 1});
  const Statevector sv = sim::Engine().run_statevector(round);
  EXPECT_NEAR(std::abs(sv.amplitude(0)), 1.0, 1e-12);

  Circuit mapped(3, 0);
  mapped.append(c, {2, 0});  // append preserves symbols through qubit maps
  EXPECT_EQ(mapped.num_parameters(), 3);
  EXPECT_TRUE(mapped.instructions()[0].is_parameterized());
}

TEST(ParamTest, ExecutionGuardsRejectUnboundCircuits) {
  Circuit c(1, 1);
  c.rx(Param::symbol(0), 0);
  c.measure(0, 0);
  EXPECT_THROW(sim::Engine().run_counts(c, 10, 1), ValidationError);
  EXPECT_THROW(sim::Engine().run_statevector(c), ValidationError);
  Statevector sv(1);
  EXPECT_THROW(sv.apply(c.instructions()[0]), ValidationError);
  EXPECT_THROW(sim::fuse_unitaries(std::vector<sim::Instruction>{c.instructions()[0]}, 1),
               ValidationError);
}

// --- apply_1q_layer -----------------------------------------------------------

TEST(LayerKernelTest, MatchesSequentialApplication) {
  Rng rng(7);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 3 + static_cast<int>(rng.next_below(4));
    Statevector a(n), b(n);
    // Random start state via a few gates.
    for (int q = 0; q < n; ++q) {
      const sim::Mat2 h = sim::gate_matrix_1q(Gate::H, nullptr);
      a.apply_1q(q, h);
      b.apply_1q(q, h);
    }
    std::vector<std::pair<int, sim::Mat2>> layer;
    for (int q = n - 1; q >= 0; --q) {
      if (rng.next_below(4) == 0) continue;  // not every wire participates
      const double angles[3] = {rng.next_double(), rng.next_double(), rng.next_double()};
      layer.emplace_back(q, sim::gate_matrix_1q(Gate::U3, angles));
    }
    a.apply_1q_layer(layer);
    for (const auto& [q, u] : layer) b.apply_1q(q, u);
    EXPECT_LT(max_amp_diff(a, b), 1e-12) << "trial " << trial;
  }
}

TEST(LayerKernelTest, RejectsDuplicateQubits) {
  Statevector sv(2);
  const sim::Mat2 h = sim::gate_matrix_1q(Gate::H, nullptr);
  const std::vector<std::pair<int, sim::Mat2>> layer{{0, h}, {0, h}};
  EXPECT_THROW(sv.apply_1q_layer(layer), ValidationError);
}

// --- SweepPlan ----------------------------------------------------------------

Circuit qaoa_like(int n) {
  Circuit c(n, n);
  for (int q = 0; q < n; ++q) c.h(q);
  for (int q = 0; q < n; ++q) c.rzz(Param::symbol(0, -1.0), q, (q + 1) % n);
  for (int q = 0; q < n; ++q) c.rx(Param::symbol(1, 2.0), q);
  c.measure_all();
  return c;
}

TEST(SweepPlanTest, StatsExposeStaticPrefixAndDynamicOps) {
  const Circuit c = qaoa_like(6);
  sim::SweepPlan plan(c);
  const auto& stats = plan.stats();
  EXPECT_EQ(plan.num_parameters(), 2);
  EXPECT_TRUE(plan.has_measurements());
  EXPECT_GT(stats.prefix_ops, 0u);   // the H wall is binding-independent
  EXPECT_GT(stats.dynamic_ops, 0u);  // cost + mixer re-bind
  EXPECT_LE(stats.dynamic_ops, stats.ops);
}

TEST(SweepPlanTest, RejectsMidCircuitMeasurementAndReset) {
  Circuit mid(2, 2);
  mid.h(0);
  mid.measure(0, 0);
  mid.h(1);
  mid.measure(1, 1);
  EXPECT_THROW(sim::SweepPlan{mid}, ValidationError);

  Circuit with_reset(1, 1);
  with_reset.h(0);
  with_reset.reset(0);
  with_reset.measure(0, 0);
  EXPECT_THROW(sim::SweepPlan{with_reset}, ValidationError);
}

TEST(SweepPlanTest, SessionValidatesBindingWidthAndShots) {
  sim::SweepPlan plan(qaoa_like(4));
  sim::SweepPlan::Session session(plan);
  EXPECT_THROW(session.run_counts(std::vector<double>{0.1}, 16, 1), ValidationError);
  EXPECT_THROW(session.run_counts(std::vector<double>{0.1, 0.2}, 0, 1), ValidationError);
}

TEST(SweepPlanTest, UnparameterizedCircuitSweepsBySeedOnly) {
  Circuit c(3, 3);
  c.h(0);
  c.cx(0, 1);
  c.cx(1, 2);
  c.measure_all();
  sim::SweepPlan plan(c);
  EXPECT_EQ(plan.num_parameters(), 0);
  sim::SweepPlan::Session session(plan);
  const auto counts = session.run_counts({}, 200, 3);
  std::int64_t ghz = 0;
  for (const auto& [bits, n] : counts) {
    EXPECT_TRUE(bits == "000" || bits == "111") << bits;
    ghz += n;
  }
  EXPECT_EQ(ghz, 200);
  EXPECT_EQ(session.run_counts({}, 200, 3), counts);  // same seed, same counts
}

// --- core parameter references ------------------------------------------------

TEST(ParamRefTest, ParsesBothEncodings) {
  EXPECT_FALSE(core::parse_param_ref(json::Value(1.5)).has_value());
  EXPECT_FALSE(core::parse_param_ref(json::Value("plain")).has_value());
  const auto simple = core::parse_param_ref(json::Value("$gamma"));
  ASSERT_TRUE(simple.has_value());
  EXPECT_EQ(simple->name, "gamma");
  EXPECT_DOUBLE_EQ(simple->scale, 1.0);

  json::Value obj = json::Value::object();
  obj.set("param", json::Value("beta"));
  obj.set("scale", json::Value(2.0));
  obj.set("offset", json::Value(-0.5));
  const auto linear = core::parse_param_ref(obj);
  ASSERT_TRUE(linear.has_value());
  EXPECT_EQ(linear->name, "beta");
  EXPECT_DOUBLE_EQ(linear->scale, 2.0);
  EXPECT_DOUBLE_EQ(linear->offset, -0.5);

  obj.set("typo", json::Value(1));
  EXPECT_THROW(core::parse_param_ref(obj), ValidationError);
}

core::JobBundle qaoa_bundle(int n, std::int64_t samples, std::uint64_t seed,
                            const std::string& engine = "gate.statevector_simulator") {
  const algolib::Graph graph = algolib::Graph::cycle(n);
  const auto reg = algolib::make_ising_register("cut", static_cast<unsigned>(n));
  core::OperatorSequence seq;
  seq.ops.push_back(algolib::prep_uniform_descriptor(reg));
  core::OperatorDescriptor cost = algolib::cost_phase_descriptor(reg, graph, 0.0);
  cost.params.set("gamma", json::Value("$gamma"));
  core::OperatorDescriptor mixer = algolib::mixer_descriptor(reg, 0.0);
  mixer.params.set("beta", json::Value("$beta"));
  seq.ops.push_back(std::move(cost));
  seq.ops.push_back(std::move(mixer));
  seq.ops.push_back(algolib::measurement_descriptor(reg));
  core::Context ctx;
  ctx.exec.engine = engine;
  ctx.exec.samples = samples;
  ctx.exec.seed = seed;
  return core::JobBundle::package(core::RegisterSet(std::vector<core::QuantumDataType>{reg}),
                                  std::move(seq), ctx, "sweep-test", {"gamma", "beta"});
}

TEST(ParamRefTest, PackageRejectsUndeclaredAndDuplicateParameters) {
  const auto reg = algolib::make_ising_register("s", 3);
  core::OperatorSequence seq;
  core::OperatorDescriptor mixer = algolib::mixer_descriptor(reg, 0.0);
  mixer.params.set("beta", json::Value("$beta"));
  seq.ops.push_back(std::move(mixer));
  seq.ops.push_back(algolib::measurement_descriptor(reg));
  const core::RegisterSet regs(std::vector<core::QuantumDataType>{reg});
  EXPECT_THROW(core::JobBundle::package(regs, seq, std::nullopt, "j", {}), ValidationError);
  EXPECT_THROW(core::JobBundle::package(regs, seq, std::nullopt, "j", {"beta", "beta"}),
               ValidationError);
  EXPECT_NO_THROW(core::JobBundle::package(regs, seq, std::nullopt, "j", {"beta"}));
}

TEST(ParamRefTest, BundleJsonRoundTripsParametersBlock) {
  const core::JobBundle bundle = qaoa_bundle(4, 64, 5);
  const core::JobBundle back = core::JobBundle::from_json(bundle.to_json());
  EXPECT_EQ(back.parameters, bundle.parameters);
  EXPECT_EQ(back.operators.ops[1].params.at("gamma").as_string(), "$gamma");
}

TEST(ParamRefTest, BindBundleSubstitutesEveryReference) {
  const core::JobBundle bundle = qaoa_bundle(4, 64, 5);
  const core::JobBundle bound = core::bind_bundle(bundle, std::vector<double>{0.3, 0.7});
  EXPECT_TRUE(bound.parameters.empty());
  EXPECT_DOUBLE_EQ(bound.operators.ops[1].params.at("gamma").as_double(), 0.3);
  EXPECT_DOUBLE_EQ(bound.operators.ops[2].params.at("beta").as_double(), 0.7);
  EXPECT_THROW(core::bind_bundle(bundle, std::vector<double>{0.3}), ValidationError);
}

TEST(ParamRefTest, GateBackendRejectsUnboundDirectRun) {
  backend::register_builtin_backends();
  const core::JobBundle bundle = qaoa_bundle(4, 64, 5);
  // Rejected at admission (analysis QA012), synchronously and with the
  // instruction-aware diagnostic text — not deep inside a worker.
  try {
    core::submit(bundle);
    FAIL() << "unbound direct submit must be rejected";
  } catch (const ValidationError& e) {
    EXPECT_NE(std::string(e.what()).find("QA012"), std::string::npos) << e.what();
  }
  // But a bound copy runs fine.
  EXPECT_NO_THROW(core::submit(core::bind_bundle(bundle, std::vector<double>{0.2, 0.4})));
}

// --- symbolic transpilation ---------------------------------------------------

TEST(SymbolicTranspileTest, BasisTranslationCarriesSymbols) {
  Circuit c(3, 0);
  c.h(0);
  c.cp(Param::symbol(0, 0.5), 0, 1);
  c.rzz(Param::symbol(1), 1, 2);
  c.crz(Param::symbol(0, -1.0, 0.25), 0, 2);
  c.ry(Param::symbol(1, 3.0), 1);
  transpile::TranspileOptions topts;
  topts.basis = transpile::BasisSet({"rz", "sx", "cx"});
  topts.optimization_level = 2;
  const transpile::TranspileResult result = transpile::transpile(c, topts);
  EXPECT_TRUE(result.circuit.is_parameterized());
  for (const auto& inst : result.circuit.instructions())
    EXPECT_TRUE(inst.gate == Gate::RZ || inst.gate == Gate::SX || inst.gate == Gate::CX ||
                inst.gate == Gate::Barrier)
        << sim::gate_name(inst.gate);
  const std::vector<double> v{0.8, -1.3};
  const Statevector got = sim::Engine().run_statevector(result.circuit.bind(v));
  const Statevector want = sim::Engine().run_statevector(c.bind(v));
  // Basis translation preserves semantics up to global phase.
  std::complex<double> inner = 0.0;
  for (std::uint64_t i = 0; i < want.dim(); ++i)
    inner += std::conj(want.amplitude(i)) * got.amplitude(i);
  EXPECT_NEAR(std::abs(inner), 1.0, 1e-12);
}

// --- submit_sweep -------------------------------------------------------------

std::vector<std::vector<double>> small_grid() {
  std::vector<std::vector<double>> grid;
  for (int i = 0; i < 3; ++i)
    for (int j = 0; j < 3; ++j) grid.push_back({0.2 + 0.3 * i, 0.1 + 0.2 * j});
  return grid;
}

TEST(SubmitSweepTest, RunsEveryBindingWithPlanCaching) {
  backend::register_builtin_backends();
  svc::ServiceConfig config;
  config.default_workers = 2;
  svc::ExecutionService service(config);
  const svc::SweepHandle sweep = service.submit_sweep(qaoa_bundle(5, 128, 11), small_grid());
  EXPECT_TRUE(sweep.plan_cached());
  EXPECT_EQ(sweep.size(), 9u);
  sweep.wait();
  EXPECT_EQ(sweep.completed(), 9u);
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    ASSERT_EQ(sweep.status(i), svc::JobStatus::Done) << sweep.error(i);
    const core::ExecutionResult result = sweep.result(i);
    EXPECT_EQ(result.counts.total(), 128);
    EXPECT_EQ(result.metadata.at("seed").as_int(),
              static_cast<std::int64_t>(core::sweep_seed(11, i)));
    EXPECT_EQ(result.metadata.at("binding")[0].as_double(), small_grid()[i][0]);
  }
}

TEST(SubmitSweepTest, ResultsIndependentOfWorkerCount) {
  backend::register_builtin_backends();
  std::vector<std::vector<core::ExecutionResult>> runs;
  for (const int workers : {1, 3}) {
    svc::ServiceConfig config;
    config.default_workers = workers;
    svc::ExecutionService service(config);
    const svc::SweepHandle sweep = service.submit_sweep(qaoa_bundle(4, 96, 21), small_grid());
    sweep.wait();
    std::vector<core::ExecutionResult> results;
    for (std::size_t i = 0; i < sweep.size(); ++i) results.push_back(sweep.result(i));
    runs.push_back(std::move(results));
  }
  for (std::size_t i = 0; i < runs[0].size(); ++i)
    EXPECT_EQ(runs[0][i].counts.map(), runs[1][i].counts.map()) << "binding " << i;
}

TEST(SubmitSweepTest, FallbackPathMatchesIndependentSubmits) {
  backend::register_builtin_backends();
  // A noise context disables the cached plan (trajectory sampling), forcing
  // the bind_bundle + run() fallback — which must equal a direct submit of
  // the hand-bound bundle with the derived per-binding seed.
  core::JobBundle bundle = qaoa_bundle(4, 64, 31);
  bundle.context->noise = core::NoisePolicy{};
  bundle.context->noise->enabled = true;
  bundle.context->noise->depolarizing_1q = 0.01;
  svc::ExecutionService service;
  const auto grid = small_grid();
  const svc::SweepHandle sweep = service.submit_sweep(bundle, grid);
  EXPECT_FALSE(sweep.plan_cached());
  sweep.wait();
  for (const std::size_t i : {std::size_t{0}, std::size_t{4}}) {
    core::JobBundle bound = core::bind_bundle(bundle, grid[i]);
    bound.context->exec.seed = core::sweep_seed(31, i);
    const core::ExecutionResult want = core::submit(bound);
    EXPECT_EQ(sweep.result(i).counts.map(), want.counts.map()) << "binding " << i;
  }
}

TEST(SubmitSweepTest, ValidatesBindingsUpFront) {
  backend::register_builtin_backends();
  svc::ExecutionService service;
  EXPECT_THROW(service.submit_sweep(qaoa_bundle(4, 16, 1), {}), BackendError);
  EXPECT_THROW(service.submit_sweep(qaoa_bundle(4, 16, 1), {{0.1}}), BackendError);
  const svc::SweepHandle invalid;
  EXPECT_THROW(invalid.size(), BackendError);
  EXPECT_THROW(invalid.wait(), BackendError);
}

TEST(SubmitSweepTest, CancelSkipsUnclaimedBindings) {
  backend::register_builtin_backends();
  svc::ServiceConfig config;
  config.default_workers = 1;
  svc::ExecutionService service(config);
  // A larger grid so cancellation lands while bindings are still queued.
  std::vector<std::vector<double>> grid;
  for (int i = 0; i < 24; ++i) grid.push_back({0.01 * i, 0.02 * i});
  const svc::SweepHandle sweep = service.submit_sweep(qaoa_bundle(6, 64, 7), grid);
  const std::size_t cancelled = sweep.cancel();
  sweep.wait();
  EXPECT_EQ(sweep.completed(), grid.size());
  std::size_t done = 0, cancelled_seen = 0;
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    if (sweep.status(i) == svc::JobStatus::Done) {
      ++done;
      EXPECT_NO_THROW(sweep.result(i));
    } else {
      ASSERT_EQ(sweep.status(i), svc::JobStatus::Cancelled);
      ++cancelled_seen;
      EXPECT_THROW(sweep.result(i), BackendError);
    }
  }
  EXPECT_EQ(cancelled_seen, cancelled);
  EXPECT_EQ(done + cancelled_seen, grid.size());
}

/// Backend whose sweep sessions always fail to open: exercises the shard
/// clean-up path (a sweep must terminate with FAILED bindings, never hang).
class SessionFailBackend final : public core::Backend {
 public:
  std::string name() const override { return "test.sweep_session_fail"; }
  core::ExecutionResult run(const core::JobBundle&) override {
    throw BackendError("direct run not expected in this test");
  }
  json::Value capabilities() const override {
    json::Value caps = json::Value::object();
    caps.set("name", json::Value(name()));
    caps.set("kind", json::Value("gate"));
    caps.set("num_qubits", json::Value(static_cast<std::int64_t>(20)));
    return caps;
  }
  std::shared_ptr<core::SweepRealization> prepare_sweep(const core::JobBundle&) override {
    class Realization final : public core::SweepRealization {
     public:
      std::unique_ptr<core::SweepSession> open_session() override {
        throw BackendError("session boom");
      }
    };
    return std::make_shared<Realization>();
  }
};

TEST(SubmitSweepTest, AllSessionsFailingFailsBindingsInsteadOfHanging) {
  backend::register_builtin_backends();
  static bool registered = false;
  if (!registered) {
    core::BackendRegistry::instance().register_backend(
        "test.sweep_session_fail", [] { return std::make_unique<SessionFailBackend>(); });
    registered = true;
  }
  svc::ServiceConfig config;
  config.default_workers = 2;
  svc::ExecutionService service(config);
  const svc::SweepHandle sweep =
      service.submit_sweep(qaoa_bundle(4, 16, 1, "test.sweep_session_fail"), small_grid());
  ASSERT_TRUE(sweep.wait_for(std::chrono::seconds(30)));
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    EXPECT_EQ(sweep.status(i), svc::JobStatus::Failed);
    EXPECT_NE(sweep.error(i).find("session boom"), std::string::npos) << sweep.error(i);
  }
}

TEST(SubmitSweepTest, AutoRoutingResolvesEngine) {
  backend::register_builtin_backends();
  core::JobBundle bundle = qaoa_bundle(4, 32, 3, "auto");
  svc::ExecutionService service;
  const svc::SweepHandle sweep = service.submit_sweep(bundle, small_grid());
  ASSERT_TRUE(sweep.decision().has_value());
  EXPECT_EQ(sweep.engine(), "gate.statevector_simulator");
  sweep.wait();
  EXPECT_EQ(sweep.status(0), svc::JobStatus::Done);
}

}  // namespace
}  // namespace quml

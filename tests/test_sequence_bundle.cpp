// Tests for operator-sequence validation (the paper's composability and
// non-interference rules), inversion, cost accumulation, result decoding,
// and job-bundle packaging / file round trips.

#include <gtest/gtest.h>

#include <cstdio>

#include "core/bundle.hpp"
#include "core/result.hpp"
#include "core/sequence.hpp"
#include "util/errors.hpp"

namespace quml::core {
namespace {

QuantumDataType make_reg(const std::string& id, unsigned width,
                         EncodingKind kind = EncodingKind::UintRegister) {
  QuantumDataType q;
  q.id = id;
  q.width = width;
  q.encoding = kind;
  return q;
}

OperatorDescriptor make_op(const std::string& kind, const std::string& domain,
                           const std::string& codomain = "") {
  OperatorDescriptor op;
  op.name = kind;
  op.rep_kind = kind;
  op.domain_qdt = domain;
  op.codomain_qdt = codomain;
  return op;
}

TEST(RegisterSet, OffsetsAndLookup) {
  RegisterSet regs;
  regs.add(make_reg("a", 3));
  regs.add(make_reg("b", 2));
  EXPECT_EQ(regs.total_width(), 5u);
  EXPECT_EQ(regs.offset_of("a"), 0u);
  EXPECT_EQ(regs.offset_of("b"), 3u);
  EXPECT_EQ(regs.at("b").width, 2u);
  EXPECT_THROW(regs.at("c"), ValidationError);
  EXPECT_THROW(regs.add(make_reg("a", 1)), ValidationError);  // duplicate id
}

TEST(Sequence, ValidatesDanglingReference) {
  RegisterSet regs;
  regs.add(make_reg("a", 3));
  OperatorSequence seq;
  seq.ops.push_back(make_op("PREP_UNIFORM", "ghost"));
  EXPECT_THROW(seq.validate(regs), ValidationError);
}

TEST(Sequence, ValidatesWidthMismatch) {
  RegisterSet regs;
  regs.add(make_reg("a", 3));
  regs.add(make_reg("b", 2));
  OperatorSequence seq;
  seq.ops.push_back(make_op("QFT_TEMPLATE", "a", "b"));  // in-place template, widths differ
  EXPECT_THROW(seq.validate(regs), ValidationError);
}

TEST(Sequence, WidthChangingKindsExempt) {
  RegisterSet regs;
  regs.add(make_reg("a", 3));
  regs.add(make_reg("flag", 1, EncodingKind::BoolRegister));
  OperatorSequence seq;
  seq.ops.push_back(make_op(rep::kComparatorTemplate, "a", "flag"));
  EXPECT_NO_THROW(seq.validate(regs));
}

TEST(Sequence, HiddenMeasurementRejected) {
  // The paper's non-interference rule: "no hidden measurement/reset".
  RegisterSet regs;
  regs.add(make_reg("a", 3));
  OperatorSequence seq;
  seq.ops.push_back(make_op(rep::kPrepUniform, "a"));
  seq.ops.push_back(make_op(rep::kMeasurement, "a"));
  seq.ops.push_back(make_op(rep::kMixerRx, "a"));  // gate after measurement
  EXPECT_THROW(seq.validate(regs), ValidationError);

  SequenceRules relaxed;
  relaxed.allow_mid_circuit = true;
  EXPECT_NO_THROW(seq.validate(regs, relaxed));
}

TEST(Sequence, TrailingMeasurementBlockAllowed) {
  RegisterSet regs;
  regs.add(make_reg("a", 3));
  regs.add(make_reg("b", 3));
  OperatorSequence seq;
  seq.ops.push_back(make_op(rep::kPrepUniform, "a"));
  seq.ops.push_back(make_op(rep::kMeasurement, "a"));
  seq.ops.push_back(make_op(rep::kMeasurement, "b"));  // measuring two registers is fine
  EXPECT_NO_THROW(seq.validate(regs));
}

TEST(Sequence, ResultSchemaReferencesChecked) {
  RegisterSet regs;
  regs.add(make_reg("a", 3));
  OperatorSequence seq;
  OperatorDescriptor op = make_op(rep::kMeasurement, "a");
  ResultSchema schema;
  schema.datatype = MeasurementSemantics::AsUint;
  schema.clbit_order.push_back({"a", 5});  // out of range
  op.result_schema = schema;
  seq.ops.push_back(op);
  EXPECT_THROW(seq.validate(regs), ValidationError);
}

TEST(Sequence, CostAccumulation) {
  OperatorSequence seq;
  OperatorDescriptor a = make_op("A", "r");
  CostHint ha;
  ha.twoq = 10;
  ha.depth = 5;
  a.cost_hint = ha;
  OperatorDescriptor b = make_op("B", "r");
  CostHint hb;
  hb.twoq = 3;
  hb.depth = 2;
  hb.oneq = 7;
  b.cost_hint = hb;
  seq.ops = {a, b, make_op("C", "r")};  // C has no hint
  const CostHint total = seq.accumulated_cost();
  EXPECT_EQ(*total.twoq, 13);
  EXPECT_EQ(*total.depth, 7);
  EXPECT_EQ(*total.oneq, 7);
}

TEST(Sequence, InvertQft) {
  OperatorDescriptor qft = make_op(rep::kQftTemplate, "r");
  qft.params.set("inverse", json::Value(false));
  const OperatorDescriptor inv = invert_operator(qft);
  EXPECT_TRUE(inv.param_bool("inverse", false));
  EXPECT_FALSE(invert_operator(inv).param_bool("inverse", true));
}

TEST(Sequence, InvertRotationsNegateAngles) {
  OperatorDescriptor mixer = make_op(rep::kMixerRx, "r");
  mixer.params.set("beta", json::Value(0.7));
  EXPECT_DOUBLE_EQ(invert_operator(mixer).param_double("beta", 0.0), -0.7);

  OperatorDescriptor cost = make_op(rep::kIsingCostPhase, "r");
  cost.params.set("gamma", json::Value(0.3));
  EXPECT_DOUBLE_EQ(invert_operator(cost).param_double("gamma", 0.0), -0.3);
}

TEST(Sequence, InvertAdderTogglesSubtract) {
  OperatorDescriptor add = make_op(rep::kAdderTemplate, "r");
  add.params.set("addend", json::Value(std::int64_t{5}));
  add.params.set("subtract", json::Value(false));
  const OperatorDescriptor sub = invert_operator(add);
  EXPECT_TRUE(sub.param_bool("subtract", false));
  EXPECT_EQ(sub.param_int("addend", 0), 5);
}

TEST(Sequence, NonInvertibleKindsThrow) {
  EXPECT_THROW(invert_operator(make_op(rep::kMeasurement, "r")), ValidationError);
  EXPECT_THROW(invert_operator(make_op(rep::kPrepUniform, "r")), ValidationError);
  EXPECT_THROW(invert_operator(make_op("SOME_UNKNOWN_KIND", "r")), ValidationError);
}

TEST(Sequence, InvertedReversesOrder) {
  OperatorDescriptor a = make_op(rep::kMixerRx, "r");
  a.params.set("beta", json::Value(0.1));
  OperatorDescriptor b = make_op(rep::kIsingCostPhase, "r");
  b.params.set("gamma", json::Value(0.2));
  OperatorSequence seq;
  seq.ops = {a, b};
  const OperatorSequence inv = seq.inverted();
  ASSERT_EQ(inv.ops.size(), 2u);
  EXPECT_EQ(inv.ops[0].rep_kind, rep::kIsingCostPhase);
  EXPECT_EQ(inv.ops[1].rep_kind, rep::kMixerRx);
}

TEST(Counts, BasicsAndExpectation) {
  Counts counts;
  counts.add("1010", 30);
  counts.add("0101", 50);
  counts.add("0000", 20);
  EXPECT_EQ(counts.total(), 100);
  EXPECT_EQ(counts.at("1010"), 30);
  EXPECT_EQ(counts.at("1111"), 0);
  EXPECT_DOUBLE_EQ(counts.probability("0101"), 0.5);
  EXPECT_EQ(counts.most_frequent(), "0101");
  const double ones = counts.expectation([](const std::string& bits) {
    return static_cast<double>(std::count(bits.begin(), bits.end(), '1'));
  });
  EXPECT_DOUBLE_EQ(ones, 0.3 * 2 + 0.5 * 2 + 0.0);
}

TEST(Counts, JsonRoundTrip) {
  Counts counts;
  counts.add("01", 3);
  counts.add("10", 5);
  const Counts back = Counts::from_json(counts.to_json());
  EXPECT_EQ(back.at("01"), 3);
  EXPECT_EQ(back.at("10"), 5);
}

TEST(DecodeCounts, PhaseRegister) {
  QuantumDataType q = make_reg("reg_phase", 4, EncodingKind::PhaseRegister);
  q.phase_scale = Rational(1, 16);
  ResultSchema schema;
  schema.datatype = MeasurementSemantics::AsPhase;
  schema.bit_significance = BitOrder::Lsb0;
  for (unsigned i = 0; i < 4; ++i) schema.clbit_order.push_back({"reg_phase", i});
  Counts counts;
  counts.add("1000", 10);  // clbit 3 set -> carrier 3 -> k = 8 -> 0.5 turn
  const auto decoded = decode_counts(counts, schema, q);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_DOUBLE_EQ(decoded[0].value.real_value, 0.5);
  EXPECT_EQ(decoded[0].count, 10);
}

TEST(DecodeCounts, PartialReadoutAndPermutation) {
  const QuantumDataType q = make_reg("x", 4);
  ResultSchema schema;
  schema.datatype = MeasurementSemantics::AsUint;
  schema.bit_significance = BitOrder::Lsb0;
  // Read carriers in reversed order: clbit 0 <- carrier 3, clbit 1 <- carrier 2.
  schema.clbit_order.push_back({"x", 3});
  schema.clbit_order.push_back({"x", 2});
  Counts counts;
  counts.add("01", 1);  // clbit0=1 -> carrier3=1 -> basis 0b1000 -> value 8
  const auto decoded = decode_counts(counts, schema, q);
  ASSERT_EQ(decoded.size(), 1u);
  EXPECT_EQ(decoded[0].value.uint_value, 8u);
}

TEST(DecodeCounts, MismatchedWidthThrows) {
  const QuantumDataType q = make_reg("x", 4);
  ResultSchema schema;
  schema.datatype = MeasurementSemantics::AsUint;
  Counts counts;
  counts.add("01", 1);  // schema implies 4 clbits
  EXPECT_THROW(decode_counts(counts, schema, q), ValidationError);
}

TEST(DecodeCounts, ForeignRegisterThrows) {
  const QuantumDataType q = make_reg("x", 2);
  ResultSchema schema;
  schema.datatype = MeasurementSemantics::AsUint;
  schema.clbit_order.push_back({"y", 0});
  Counts counts;
  counts.add("0", 1);
  EXPECT_THROW(decode_counts(counts, schema, q), ValidationError);
}

TEST(Bundle, PackageValidatesEagerly) {
  RegisterSet regs;
  regs.add(make_reg("a", 2));
  OperatorSequence bad;
  bad.ops.push_back(make_op(rep::kPrepUniform, "ghost"));
  EXPECT_THROW(JobBundle::package(std::move(regs), std::move(bad)), ValidationError);
}

TEST(Bundle, JsonRoundTrip) {
  RegisterSet regs;
  regs.add(make_reg("ising_vars", 4, EncodingKind::IsingSpin));
  OperatorSequence seq;
  OperatorDescriptor op = make_op(rep::kIsingProblem, "ising_vars");
  op.params.set("h", json::parse("[0.0, 0.0, 0.0, 0.0]"));
  op.params.set("J", json::parse("[[0,1,1.0],[1,2,1.0],[2,3,1.0],[3,0,1.0]]"));
  seq.ops.push_back(op);
  Context ctx;
  ctx.exec.engine = "anneal.simulated_annealer";
  ctx.anneal = AnnealPolicy{};
  const JobBundle bundle = JobBundle::package(std::move(regs), std::move(seq), ctx, "job-42");
  const JobBundle back = JobBundle::from_json(bundle.to_json());
  EXPECT_EQ(back.job_id, "job-42");
  EXPECT_EQ(back.registers.total_width(), 4u);
  EXPECT_EQ(back.operators.ops.size(), 1u);
  ASSERT_TRUE(back.context.has_value());
  EXPECT_EQ(back.context->exec.engine, "anneal.simulated_annealer");
  EXPECT_EQ(back.to_json(), bundle.to_json());
}

TEST(Bundle, SaveLoadFile) {
  RegisterSet regs;
  regs.add(make_reg("a", 2));
  OperatorSequence seq;
  seq.ops.push_back(make_op(rep::kPrepUniform, "a"));
  const JobBundle bundle = JobBundle::package(std::move(regs), std::move(seq));
  const std::string path = ::testing::TempDir() + "/quml_job.json";
  bundle.save(path);
  const JobBundle loaded = JobBundle::load(path);
  EXPECT_EQ(loaded.to_json(), bundle.to_json());
  std::remove(path.c_str());
  EXPECT_THROW(JobBundle::load("/nonexistent/dir/job.json"), BackendError);
}

TEST(Bundle, ProvenanceStamped) {
  RegisterSet regs;
  regs.add(make_reg("a", 1));
  OperatorSequence seq;
  seq.ops.push_back(make_op(rep::kPrepUniform, "a"));
  const JobBundle bundle = JobBundle::package(std::move(regs), std::move(seq));
  EXPECT_EQ(bundle.provenance.get_string("producer", ""), "quml");
}

}  // namespace
}  // namespace quml::core

// Resilience suite: error taxonomy, retry/backoff/deadline policies, circuit
// breakers, deterministic fault injection, and cross-engine failover.
//
// The scenarios the layer exists for:
//   * a seeded fail-first-N job succeeds with exactly N+1 attempts and counts
//     bit-identical to a fault-free run of the same bundle;
//   * breaker transitions closed -> open -> half_open -> closed, and an open
//     breaker steers "auto" routing away from the sick backend;
//   * deadline-exceeded jobs SETTLE (observed via wait_for, never a bare
//     wait) even when the backend hangs forever;
//   * a job exhausting retries fails over once to a capability-compatible
//     engine, with the full attempt trail on the JobHandle;
//   * a seeded chaos soak (~20% fault rate) loses no job and replays
//     bit-identically run over run.
//
// The whole binary also runs under `ctest -L svc` (the ThreadSanitizer CI
// leg) and the soak cases under `ctest -L chaos` (the chaos CI job).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "algolib/qft.hpp"
#include "backend/register_backends.hpp"
#include "core/params.hpp"
#include "core/registry.hpp"
#include "sched/scheduler.hpp"
#include "svc/execution_service.hpp"
#include "svc/resilience.hpp"
#include "util/errors.hpp"

namespace quml {
namespace {

using namespace std::chrono_literals;
using svc::CircuitBreaker;
using svc::ErrorKind;

// --- fixtures ----------------------------------------------------------------

core::JobBundle qft_job(unsigned width, std::uint64_t seed, const std::string& engine,
                        std::int64_t samples = 64) {
  const auto reg = algolib::make_phase_register("p", width);
  core::RegisterSet regs;
  regs.add(reg);
  core::OperatorSequence seq;
  seq.ops.push_back(algolib::qft_descriptor(reg, {}));
  seq.ops.push_back(algolib::measurement_descriptor(reg));
  core::Context ctx;
  ctx.exec.engine = engine;
  ctx.exec.samples = samples;
  ctx.exec.seed = seed;
  return core::JobBundle::package(std::move(regs), std::move(seq), ctx,
                                  "res" + std::to_string(width) + "-s" + std::to_string(seed));
}

/// Adds the resilience knobs to a bundle's exec.options.
void set_policy(core::JobBundle& bundle, int max_retries, double backoff_ms,
                double deadline_ms = 0.0) {
  auto& options = bundle.context->exec.options;
  options.set("max_retries", json::Value(static_cast<std::int64_t>(max_retries)));
  options.set("retry_backoff_ms", json::Value(backoff_ms));
  if (deadline_ms > 0.0) options.set("deadline_ms", json::Value(deadline_ms));
}

/// Adds a backend::FaultInjector recipe to exec.options.fault.
void set_fault(core::JobBundle& bundle, const std::string& key, json::Value value) {
  auto& options = bundle.context->exec.options;
  json::Value fault = json::Value::object();
  if (const json::Value* existing = options.find("fault")) fault = *existing;
  fault.set(key, std::move(value));
  options.set("fault", std::move(fault));
}

/// Fault-free ground truth: the same circuit, seed, and samples run directly
/// on the inner engine the injector delegates to.
std::map<std::string, std::int64_t> baseline_counts(unsigned width, std::uint64_t seed,
                                                    std::int64_t samples = 64) {
  return core::submit(qft_job(width, seed, "gate.statevector_simulator", samples)).counts.map();
}

/// Gate backend that always throws TransientError, for breaker-trip tests.
/// Advertises 2 qubits so no wider job (and no failover scan for one) can
/// land here by accident.
class SickBackend : public core::Backend {
 public:
  std::string name() const override { return "gate.res_sick"; }
  core::ExecutionResult run(const core::JobBundle&) override {
    throw svc::TransientError("res_sick backend is down");
  }
  json::Value capabilities() const override {
    json::Value caps = json::Value::object();
    caps.set("name", json::Value(name()));
    caps.set("kind", json::Value("gate"));
    caps.set("num_qubits", json::Value(static_cast<std::int64_t>(2)));
    return caps;
  }
};

void ensure_test_backends() {
  static std::once_flag flag;
  std::call_once(flag, [] {
    core::BackendRegistry::instance().register_backend(
        "gate.res_sick", [] { return std::make_unique<SickBackend>(); });
  });
}

class ResilienceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    backend::register_builtin_backends();
    ensure_test_backends();
  }
};

// --- taxonomy ----------------------------------------------------------------

TEST(ErrorTaxonomy, ClassifiesTheHierarchy) {
  const auto classify = [](auto&& error) {
    return svc::classify_failure(std::make_exception_ptr(error));
  };
  EXPECT_EQ(svc::classify_failure(nullptr), ErrorKind::None);
  EXPECT_EQ(classify(svc::TransientError("x")), ErrorKind::Transient);
  EXPECT_EQ(classify(svc::PermanentError("x")), ErrorKind::Permanent);
  EXPECT_EQ(classify(svc::DeadlineError("x")), ErrorKind::Deadline);
  // Plain execution-time backend failures default to transient (the bundle
  // passed admission; the infrastructure broke).
  EXPECT_EQ(classify(BackendError("x")), ErrorKind::Transient);
  // Defects of the job itself are never worth a retry.
  EXPECT_EQ(classify(ValidationError("x")), ErrorKind::Permanent);
  EXPECT_EQ(classify(LoweringError("x")), ErrorKind::Permanent);
  EXPECT_EQ(classify(SchemaError("x", "/p")), ErrorKind::Permanent);
  EXPECT_EQ(classify(std::runtime_error("x")), ErrorKind::Permanent);
  EXPECT_STREQ(svc::to_string(ErrorKind::Transient), "transient");
  EXPECT_STREQ(svc::to_string(ErrorKind::Deadline), "deadline");
}

// --- retry policy ------------------------------------------------------------

TEST(RetryPolicy, ReadsExecOptionsAndClampsNegatives) {
  core::ExecPolicy exec;
  exec.options.set("max_retries", json::Value(static_cast<std::int64_t>(3)));
  exec.options.set("retry_backoff_ms", json::Value(5.5));
  exec.options.set("deadline_ms", json::Value(1500.0));
  const svc::RetryPolicy policy = svc::RetryPolicy::from_exec(exec);
  EXPECT_EQ(policy.max_retries, 3);
  EXPECT_DOUBLE_EQ(policy.backoff_ms, 5.5);
  EXPECT_DOUBLE_EQ(policy.deadline_ms, 1500.0);

  core::ExecPolicy hostile;
  hostile.options.set("max_retries", json::Value(static_cast<std::int64_t>(-4)));
  hostile.options.set("retry_backoff_ms", json::Value(-1.0));
  const svc::RetryPolicy clamped = svc::RetryPolicy::from_exec(hostile);
  EXPECT_EQ(clamped.max_retries, 0);
  EXPECT_DOUBLE_EQ(clamped.backoff_ms, 0.0);
  EXPECT_FALSE(clamped.deadline_from(std::chrono::steady_clock::now()).has_value());
}

TEST(RetryPolicy, BackoffIsSeededExponentialWithBoundedJitter) {
  svc::RetryPolicy policy;
  policy.backoff_ms = 10.0;
  policy.multiplier = 2.0;
  policy.jitter_frac = 0.25;
  for (int i = 0; i < 4; ++i) {
    const double base = 10.0 * std::pow(2.0, i);
    const double delay = policy.backoff_for(i, 42);
    EXPECT_GE(delay, base * 0.75) << "retry " << i;
    EXPECT_LT(delay, base * 1.25) << "retry " << i;
    // Same (seed, index) -> same delay, every run: the schedule is replayable.
    EXPECT_DOUBLE_EQ(delay, policy.backoff_for(i, 42));
  }
  // Different seeds decorrelate, zero base never sleeps.
  EXPECT_NE(policy.backoff_for(1, 42), policy.backoff_for(1, 43));
  policy.backoff_ms = 0.0;
  EXPECT_DOUBLE_EQ(policy.backoff_for(3, 42), 0.0);
}

// --- circuit breaker (unit) --------------------------------------------------

svc::BreakerConfig fast_breaker() {
  svc::BreakerConfig config;
  config.window = 8;
  config.failure_threshold = 3;
  config.cooldown_ms = 50.0;
  config.half_open_probes = 1;
  return config;
}

TEST(Breaker, OpensOnRollingFailuresThenHalfOpensThenCloses) {
  CircuitBreaker breaker(fast_breaker());
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(breaker.allow());
    breaker.record_failure();
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
  EXPECT_FALSE(breaker.allow());

  std::this_thread::sleep_for(80ms);  // past the 50ms cooldown
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::HalfOpen);
  EXPECT_TRUE(breaker.allow());   // the single probe slot
  EXPECT_FALSE(breaker.allow());  // concurrent probes are bounded
  breaker.record_success();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
  // The window was reset on close: old failures don't count against new ones.
  breaker.record_failure();
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
}

TEST(Breaker, FailedProbeReopens) {
  CircuitBreaker breaker(fast_breaker());
  for (int i = 0; i < 3; ++i) breaker.record_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
  std::this_thread::sleep_for(80ms);
  EXPECT_TRUE(breaker.allow());
  breaker.record_failure();  // the probe died: straight back to Open
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Open);
  EXPECT_FALSE(breaker.allow());
}

TEST(Breaker, SuccessesAgeFailuresOutOfTheWindow) {
  svc::BreakerConfig config = fast_breaker();
  config.window = 4;
  CircuitBreaker breaker(config);
  breaker.record_failure();
  breaker.record_failure();
  // Four successes push both failures out of the 4-slot window...
  for (int i = 0; i < 4; ++i) breaker.record_success();
  // ...so two more failures still don't reach the threshold of 3.
  breaker.record_failure();
  breaker.record_failure();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::Closed);
}

TEST(BreakerBoard, UnseenEnginesAreClosedAndReferencesAreStable) {
  svc::BreakerBoard board(fast_breaker());
  EXPECT_EQ(board.state("gate.never_seen"), CircuitBreaker::State::Closed);
  CircuitBreaker& a = board.breaker("gate.a");
  CircuitBreaker& again = board.breaker("gate.a");
  EXPECT_EQ(&a, &again);
  for (int i = 0; i < 3; ++i) a.record_failure();
  EXPECT_EQ(board.state("gate.a"), CircuitBreaker::State::Open);
  EXPECT_EQ(board.state("gate.b"), CircuitBreaker::State::Closed);
}

// --- fail-first-N: retries succeed with bit-identical counts -----------------

TEST_F(ResilienceTest, FailFirstNSucceedsWithExactlyNPlusOneAttempts) {
  constexpr int kN = 2;
  core::JobBundle job = qft_job(4, 7, "gate.fault_injector");
  set_policy(job, /*max_retries=*/3, /*backoff_ms=*/0.5);
  set_fault(job, "fail_first_n", json::Value(static_cast<std::int64_t>(kN)));

  svc::ExecutionService service;
  const svc::JobHandle handle = service.handle(service.submit(job));
  ASSERT_TRUE(handle.wait_for(30s));
  ASSERT_EQ(handle.status(), svc::JobStatus::Done) << handle.error();
  EXPECT_EQ(handle.attempts(), static_cast<std::size_t>(kN + 1));
  EXPECT_EQ(handle.error_kind(), ErrorKind::None);
  EXPECT_TRUE(handle.failover_engine().empty());

  const auto log = handle.attempt_log();
  ASSERT_EQ(log.size(), static_cast<std::size_t>(kN + 1));
  for (int i = 0; i < kN; ++i) {
    EXPECT_EQ(log[static_cast<std::size_t>(i)].index, i);
    EXPECT_EQ(log[static_cast<std::size_t>(i)].kind, ErrorKind::Transient);
    EXPECT_NE(log[static_cast<std::size_t>(i)].error.find("injected fault"), std::string::npos);
  }
  EXPECT_EQ(log.back().kind, ErrorKind::None);
  EXPECT_TRUE(log.back().error.empty());

  // The surviving attempt delegates the unmodified bundle to the inner
  // engine: counts are bit-identical to a fault-free run.
  EXPECT_EQ(handle.result().counts.map(), baseline_counts(4, 7));
}

TEST_F(ResilienceTest, PermanentFaultsAreNeverRetried) {
  core::JobBundle job = qft_job(4, 8, "gate.fault_injector");
  set_policy(job, /*max_retries=*/3, /*backoff_ms=*/0.5);
  set_fault(job, "fail_first_n", json::Value(static_cast<std::int64_t>(10)));
  set_fault(job, "kind", json::Value("permanent"));

  svc::ExecutionService service;
  const svc::JobHandle handle = service.handle(service.submit(job));
  ASSERT_TRUE(handle.wait_for(30s));
  EXPECT_EQ(handle.status(), svc::JobStatus::Failed);
  EXPECT_EQ(handle.attempts(), 1u);  // retry budget left untouched
  EXPECT_EQ(handle.error_kind(), ErrorKind::Permanent);
  EXPECT_TRUE(handle.failover_engine().empty());  // failover is transient-only
  EXPECT_THROW(handle.result(), svc::PermanentError);
}

// --- deadlines: hanging backends settle, queued jobs age out -----------------

TEST_F(ResilienceTest, DeadlineSettlesAHangingBackend) {
  core::JobBundle job = qft_job(4, 9, "gate.fault_injector");
  set_policy(job, /*max_retries=*/0, /*backoff_ms=*/0.0, /*deadline_ms=*/200.0);
  set_fault(job, "hang", json::Value(true));

  svc::ExecutionService service;
  const svc::JobHandle handle = service.handle(service.submit(job));
  // wait_for, never wait: the assertion IS that the job settles.
  ASSERT_TRUE(handle.wait_for(30s)) << "hanging job never settled";
  EXPECT_EQ(handle.status(), svc::JobStatus::Failed);
  EXPECT_EQ(handle.error_kind(), ErrorKind::Deadline);
  EXPECT_THROW(handle.result(), svc::DeadlineError);
}

TEST_F(ResilienceTest, QueuedJobAgesOutAgainstItsDeadline) {
  svc::ServiceConfig config;
  config.default_workers = 1;  // serialize the injector pool
  svc::ExecutionService service(config);

  core::JobBundle slow = qft_job(4, 10, "gate.fault_injector");
  set_fault(slow, "latency_ms", json::Value(400.0));
  core::JobBundle doomed = qft_job(4, 11, "gate.fault_injector");
  set_policy(doomed, /*max_retries=*/2, /*backoff_ms=*/1.0, /*deadline_ms=*/100.0);

  const svc::JobId blocker = service.submit(slow);
  const svc::JobHandle handle = service.handle(service.submit(doomed));
  ASSERT_TRUE(handle.wait_for(30s));
  EXPECT_EQ(handle.status(), svc::JobStatus::Failed);
  EXPECT_EQ(handle.error_kind(), ErrorKind::Deadline);
  // The deadline ate the job before it ever ran: queue time counts against
  // the budget, and nothing was attempted.
  EXPECT_EQ(handle.attempts(), 0u);
  EXPECT_NE(handle.error().find("deadline"), std::string::npos);
  service.handle(blocker).wait();
}

TEST_F(ResilienceTest, ShutdownInterruptsHangingAttempts) {
  core::JobBundle job = qft_job(4, 12, "gate.fault_injector");
  // Generous deadline: only the shutdown stop flag can unblock this hang.
  set_policy(job, /*max_retries=*/0, /*backoff_ms=*/0.0, /*deadline_ms=*/60000.0);
  set_fault(job, "hang", json::Value(true));

  svc::ExecutionService service;
  const svc::JobHandle handle = service.handle(service.submit(job));
  service.shutdown();  // must not wait out the 60s deadline
  ASSERT_TRUE(is_terminal(handle.status()));
  EXPECT_EQ(handle.status(), svc::JobStatus::Failed);
  EXPECT_NE(handle.error().find("shutting down"), std::string::npos) << handle.error();
}

// --- cancellation keeps its own kind ----------------------------------------

TEST_F(ResilienceTest, CancelledJobsReportCancelledKind) {
  svc::ServiceConfig config;
  config.default_workers = 1;
  svc::ExecutionService service(config);
  core::JobBundle slow = qft_job(4, 13, "gate.fault_injector");
  set_fault(slow, "latency_ms", json::Value(300.0));
  const svc::JobId running = service.submit(slow);
  const svc::JobHandle victim = service.handle(service.submit(qft_job(4, 14, "gate.fault_injector")));
  ASSERT_TRUE(victim.cancel());
  EXPECT_EQ(victim.error_kind(), ErrorKind::Cancelled);
  service.handle(running).wait();
}

// --- failover ----------------------------------------------------------------

TEST_F(ResilienceTest, ExhaustedRetriesFailOverToACompatibleEngine) {
  core::JobBundle job = qft_job(4, 15, "gate.fault_injector");
  set_policy(job, /*max_retries=*/1, /*backoff_ms=*/0.5);
  set_fault(job, "fail_prob", json::Value(1.0));  // the injector never yields

  svc::ExecutionService service;
  const svc::JobHandle handle = service.handle(service.submit(job));
  ASSERT_TRUE(handle.wait_for(30s));
  ASSERT_EQ(handle.status(), svc::JobStatus::Done) << handle.error();
  EXPECT_EQ(handle.failover_engine(), "gate.statevector_simulator");

  // Two transient strikes on the injector, one success on the alternate, one
  // continuous attempt numbering across the switch.
  const auto log = handle.attempt_log();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0].engine, "gate.fault_injector");
  EXPECT_EQ(log[0].kind, ErrorKind::Transient);
  EXPECT_EQ(log[1].engine, "gate.fault_injector");
  EXPECT_EQ(log[2].engine, "gate.statevector_simulator");
  EXPECT_EQ(log[2].index, 2);
  EXPECT_EQ(log[2].kind, ErrorKind::None);

  // The alternate ran the same unmodified bundle: identical counts.
  EXPECT_EQ(handle.result().counts.map(), baseline_counts(4, 15));
}

TEST_F(ResilienceTest, FailFastJobsNeverFailOver) {
  // Historical semantics: without max_retries the first failure is final —
  // no second engine, no surprise counts from an engine the user never chose.
  core::JobBundle job = qft_job(4, 16, "gate.fault_injector");
  set_fault(job, "fail_prob", json::Value(1.0));
  svc::ExecutionService service;
  const svc::JobHandle handle = service.handle(service.submit(job));
  ASSERT_TRUE(handle.wait_for(30s));
  EXPECT_EQ(handle.status(), svc::JobStatus::Failed);
  EXPECT_EQ(handle.attempts(), 1u);
  EXPECT_TRUE(handle.failover_engine().empty());
  EXPECT_EQ(handle.error_kind(), ErrorKind::Transient);
}

// --- breaker wired into the service -----------------------------------------

TEST_F(ResilienceTest, RepeatedFailuresOpenTheBreakerAndAutoRoutesAround) {
  svc::ServiceConfig config;
  config.breaker.window = 8;
  config.breaker.failure_threshold = 3;
  config.breaker.cooldown_ms = 60000.0;  // stays open for the whole test
  svc::ExecutionService service(config);
  EXPECT_EQ(service.breaker_state("gate.res_sick"), CircuitBreaker::State::Closed);

  // Three real transient failures trip the breaker; the remaining retries
  // fail fast on it, and the exhausted job then fails over and completes.
  core::JobBundle trip = qft_job(2, 17, "gate.res_sick");
  set_policy(trip, /*max_retries=*/4, /*backoff_ms=*/0.5);
  const svc::JobHandle handle = service.handle(service.submit(trip));
  ASSERT_TRUE(handle.wait_for(30s));
  EXPECT_EQ(service.breaker_state("gate.res_sick"), CircuitBreaker::State::Open);
  ASSERT_EQ(handle.status(), svc::JobStatus::Done) << handle.error();
  EXPECT_FALSE(handle.failover_engine().empty());
  const auto log = handle.attempt_log();
  ASSERT_EQ(log.size(), 6u);  // 3 real failures + 2 breaker fail-fasts + 1 failover
  EXPECT_NE(log[3].error.find("circuit breaker open"), std::string::npos);
  EXPECT_NE(log[4].error.find("circuit breaker open"), std::string::npos);

  // Breaker state feeds the capability snapshot feeding "auto" routing.
  bool found = false;
  for (const auto& cap : service.capability_snapshot())
    if (cap.name == "gate.res_sick") {
      found = true;
      EXPECT_EQ(cap.health, "open");
      const sched::JobEstimate est = sched::estimate(qft_job(2, 18, "auto"), cap);
      EXPECT_FALSE(est.feasible);
      EXPECT_NE(est.reason.find("circuit breaker"), std::string::npos);
    }
  EXPECT_TRUE(found);

  const svc::JobHandle routed = service.handle(service.submit(qft_job(2, 19, "auto")));
  EXPECT_NE(routed.engine(), "gate.res_sick");
  ASSERT_TRUE(routed.wait_for(30s));
  EXPECT_EQ(routed.status(), svc::JobStatus::Done);
}

// --- sweeps: per-binding retries, taxonomy, no failover ----------------------

TEST_F(ResilienceTest, SweepBindingsRetryUnderTheSweepPolicy) {
  core::JobBundle job = qft_job(3, 20, "gate.fault_injector");
  set_policy(job, /*max_retries=*/1, /*backoff_ms=*/0.5);
  set_fault(job, "fail_first_n", json::Value(static_cast<std::int64_t>(1)));

  svc::ServiceConfig config;
  config.default_workers = 2;
  svc::ExecutionService service(config);
  const svc::SweepHandle sweep =
      service.submit_sweep(job, std::vector<std::vector<double>>(3));
  ASSERT_TRUE(sweep.wait_for(60s));
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    // Every binding's attempt 0 hits the injected fault; the per-binding
    // retry (attempt 1) survives and reproduces the fault-free counts
    // (bindings run under their own derived seed, so the baseline does too).
    ASSERT_EQ(sweep.status(i), svc::JobStatus::Done) << sweep.error(i);
    EXPECT_EQ(sweep.error_kind(i), ErrorKind::None);
    EXPECT_EQ(sweep.result(i).counts.map(), baseline_counts(3, core::sweep_seed(20, i)));
  }
}

TEST_F(ResilienceTest, SweepBindingFailuresCarryTheTaxonomy) {
  core::JobBundle job = qft_job(3, 21, "gate.fault_injector");
  set_fault(job, "fail_prob", json::Value(1.0));
  svc::ExecutionService service;
  const svc::SweepHandle sweep =
      service.submit_sweep(job, std::vector<std::vector<double>>(2));
  ASSERT_TRUE(sweep.wait_for(60s));
  for (std::size_t i = 0; i < sweep.size(); ++i) {
    EXPECT_EQ(sweep.status(i), svc::JobStatus::Failed);
    // Sweeps never fail over: the sweep was routed as one unit.
    EXPECT_EQ(sweep.error_kind(i), ErrorKind::Transient);
    EXPECT_NE(sweep.error(i).find("injected fault"), std::string::npos);
  }
}

// --- chaos soak (also run standalone by the `chaos` CI job) ------------------

/// One soak pass: kJobs seeded jobs through the injector at a 20% fault rate
/// with retries+failover enabled.  Returns the per-job (status, attempts,
/// failover) triple for determinism comparison.
struct SoakRow {
  svc::JobStatus status;
  std::size_t attempts;
  std::string failover;
  bool operator==(const SoakRow& other) const {
    return status == other.status && attempts == other.attempts && failover == other.failover;
  }
};

std::vector<SoakRow> run_soak(int jobs, int workers, int failure_threshold) {
  svc::ServiceConfig config;
  config.default_workers = workers;
  config.breaker.failure_threshold = failure_threshold;
  svc::ExecutionService service(config);
  std::vector<core::JobBundle> bundles;
  for (int i = 0; i < jobs; ++i) {
    core::JobBundle job =
        qft_job(3 + static_cast<unsigned>(i % 3), 100 + static_cast<std::uint64_t>(i),
                "gate.fault_injector", 32);
    set_policy(job, /*max_retries=*/3, /*backoff_ms=*/0.2);
    set_fault(job, "fail_prob", json::Value(0.2));
    bundles.push_back(std::move(job));
  }
  const std::vector<svc::JobId> ids = service.submit_batch(std::move(bundles));
  std::vector<SoakRow> rows;
  for (const svc::JobId id : ids) {
    const svc::JobHandle handle = service.handle(id);
    // Bounded wait per job: a hung job fails the soak instead of wedging it.
    EXPECT_TRUE(handle.wait_for(120s)) << "soak job " << id << " never settled";
    rows.push_back({handle.status(), handle.attempts(), handle.failover_engine()});
  }
  service.shutdown();  // clean shutdown with everything drained is part of the soak
  return rows;
}

TEST_F(ResilienceTest, ChaosSoakLosesNoJobs) {
  constexpr int kJobs = 200;
  const std::vector<SoakRow> rows = run_soak(kJobs, /*workers=*/2, /*failure_threshold=*/5);
  ASSERT_EQ(rows.size(), static_cast<std::size_t>(kJobs));
  int retried = 0;
  for (int i = 0; i < kJobs; ++i) {
    // Retries or failover must land every job: the injector's survival path
    // delegates to the statevector engine, and failover reaches it directly.
    EXPECT_EQ(rows[static_cast<std::size_t>(i)].status, svc::JobStatus::Done) << "job " << i;
    if (rows[static_cast<std::size_t>(i)].attempts > 1) ++retried;
  }
  // A 20% fault rate over 200 jobs retries a substantial slice: the soak is
  // only meaningful if faults actually fired.
  EXPECT_GT(retried, kJobs / 10);
}

TEST_F(ResilienceTest, ChaosSoakRetriedCountsMatchFaultFreeRun) {
  // Every soak survivor must produce counts bit-identical to the fault-free
  // baseline of its own bundle — retries and failover never skew physics.
  constexpr int kJobs = 48;
  svc::ServiceConfig config;
  config.default_workers = 2;
  svc::ExecutionService service(config);
  std::vector<svc::JobId> ids;
  std::vector<std::map<std::string, std::int64_t>> expected;
  for (int i = 0; i < kJobs; ++i) {
    const unsigned width = 3 + static_cast<unsigned>(i % 3);
    const std::uint64_t seed = 500 + static_cast<std::uint64_t>(i);
    expected.push_back(baseline_counts(width, seed, 32));
    core::JobBundle job = qft_job(width, seed, "gate.fault_injector", 32);
    set_policy(job, /*max_retries=*/3, /*backoff_ms=*/0.2);
    set_fault(job, "fail_prob", json::Value(0.2));
    ids.push_back(service.submit(job));
  }
  for (int i = 0; i < kJobs; ++i) {
    const svc::JobHandle handle = service.handle(ids[static_cast<std::size_t>(i)]);
    ASSERT_TRUE(handle.wait_for(120s));
    ASSERT_EQ(handle.status(), svc::JobStatus::Done) << handle.error();
    EXPECT_EQ(handle.result().counts.map(), expected[static_cast<std::size_t>(i)])
        << "job " << i << " diverged from its fault-free baseline";
  }
}

TEST_F(ResilienceTest, ChaosSoakReplaysBitIdentically) {
  // Single worker, breaker effectively disabled: the only nondeterminism
  // left would be a fault draw or backoff leaking wall-clock state.  Two
  // fresh services over the same bundles must produce identical trails.
  const std::vector<SoakRow> first = run_soak(60, /*workers=*/1, /*failure_threshold=*/1000000);
  const std::vector<SoakRow> second = run_soak(60, /*workers=*/1, /*failure_threshold=*/1000000);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_TRUE(first[i] == second[i])
        << "job " << i << " diverged: (" << svc::to_string(first[i].status) << ", "
        << first[i].attempts << ", '" << first[i].failover << "') vs ("
        << svc::to_string(second[i].status) << ", " << second[i].attempts << ", '"
        << second[i].failover << "')";
}

}  // namespace
}  // namespace quml

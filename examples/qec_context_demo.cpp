// Error correction as execution context (paper §4.3.2, Listing 5).
//
// The same logical QAOA program runs twice: once without QEC and once with
// a distance-7 surface-code policy.  The operator descriptors are untouched
// — only the context gains a `qec` block — and the orthogonal QEC service
// binds logical registers to patches and reports the physical resources.
// A distance sweep then shows the exponential logical-error suppression the
// `distance` knob buys, cross-validated by a repetition-code Monte Carlo.
//
// Build & run:  ./build/examples/qec_context_demo

#include <cstdio>

#include "algolib/ising.hpp"
#include "algolib/qaoa.hpp"
#include "backend/register_backends.hpp"
#include "core/registry.hpp"
#include "qec/repetition.hpp"
#include "qec/surface.hpp"

int main() {
  using namespace quml;
  backend::register_builtin_backends();

  const core::QuantumDataType qdt = algolib::make_ising_register("ising_vars", 4);
  const algolib::Graph graph = algolib::Graph::cycle(4);
  const core::OperatorSequence program =
      algolib::qaoa_sequence(qdt, graph, algolib::ring_p1_angles());

  core::Context plain;
  plain.exec.engine = "gate.statevector_simulator";
  plain.exec.samples = 4096;
  plain.exec.seed = 42;

  core::Context with_qec = plain;  // identical execution policy ...
  core::QecPolicy policy;          // ... plus the Listing-5 qec block
  policy.code_family = "surface";
  policy.distance = 7;
  policy.allocator = "auto";
  policy.logical_gate_set = {"H", "S", "CNOT", "T", "MEASURE_Z"};
  policy.physical_error_rate = 1e-3;
  with_qec.qec = policy;

  core::RegisterSet regs_a, regs_b;
  regs_a.add(qdt);
  regs_b.add(qdt);
  const core::ExecutionResult without =
      core::submit(core::JobBundle::package(std::move(regs_a), program, plain, "no-qec"));
  const core::ExecutionResult with =
      core::submit(core::JobBundle::package(std::move(regs_b), program, with_qec, "qec"));

  std::printf("logical results identical with and without the qec block: %s\n\n",
              without.counts.to_json() == with.counts.to_json() ? "yes" : "NO (bug!)");

  const json::Value& report = with.metadata.at("services").at("qec");
  std::printf("distance-7 surface-code binding for the 4-qubit program:\n");
  std::printf("  patches                : %lld\n",
              static_cast<long long>(report.get_int("patches", 0)));
  std::printf("  physical qubits        : %lld (2d^2-1 = 97 per patch + lanes + factories)\n",
              static_cast<long long>(report.get_int("physical_qubits", 0)));
  std::printf("  syndrome rounds        : %lld\n",
              static_cast<long long>(report.get_int("syndrome_rounds", 0)));
  std::printf("  T count (magic states) : %lld\n",
              static_cast<long long>(report.get_int("t_count", 0)));
  std::printf("  logical err / round    : %.3e\n",
              report.get_double("logical_error_per_round", 0.0));
  std::printf("  est. runtime           : %.1f us\n\n", report.get_double("runtime_us", 0.0));

  // Distance sweep: the physical price of each factor-of-~10 suppression.
  const qec::SurfaceCodeModel model;
  std::printf("%-10s %-18s %-22s %s\n", "distance", "phys qubits/patch", "logical err/round",
              "repetition-code MC (p=0.05)");
  for (int d = 3; d <= 13; d += 2) {
    const double mc = qec::repetition_logical_error_mc(d, 0.05, 400000, 42);
    std::printf("%-10d %-18lld %-22.3e %.3e\n", d,
                static_cast<long long>(qec::SurfaceCodeModel::physical_qubits_per_patch(d)),
                model.logical_error_per_round(1e-3, d), mc);
  }

  // Automatic distance selection against a failure budget.
  core::QecPolicy budgeted = policy;
  budgeted.target_logical_error_rate = 1e-12;
  const qec::QecResourceEstimate est = qec::estimate_resources(
      budgeted, 4, 12, {{"h", 4}, {"cx", 8}, {"rz", 12}, {"measure", 4}});
  std::printf("\nbudget 1e-12 over the program selects distance %d (%lld physical qubits)\n",
              est.distance, static_cast<long long>(est.physical_qubits));
  return 0;
}

// The asynchronous job service end to end (the HPC analogy the paper's §2
// motivates, made operational): a mixed gate/anneal batch is submitted with
// exec.engine = "auto", the scheduler routes every job from cost hints with
// queue_wait_us fed live from each backend pool's actual backlog, worker
// pools drain the queues concurrently, and job handles deliver statuses and
// decoded results — plus a cancellation, because queues imply the right to
// leave one.
//
// Build & run:  ./build/examples/job_service_demo

#include <cstdio>

#include "algolib/ising.hpp"
#include "algolib/qaoa.hpp"
#include "algolib/qft.hpp"
#include "backend/register_backends.hpp"
#include "svc/execution_service.hpp"
#include "util/errors.hpp"

using namespace quml;

namespace {

core::JobBundle qft_job(unsigned width, std::uint64_t seed) {
  const auto reg = algolib::make_phase_register("p", width);
  core::RegisterSet regs;
  regs.add(reg);
  core::OperatorSequence seq;
  seq.ops.push_back(algolib::qft_descriptor(reg, {}));
  seq.ops.push_back(algolib::measurement_descriptor(reg));
  core::Context ctx;
  ctx.exec.engine = "auto";
  ctx.exec.samples = 512;
  ctx.exec.seed = seed;
  return core::JobBundle::package(std::move(regs), std::move(seq), ctx,
                                  "qft" + std::to_string(width));
}

core::JobBundle qaoa_job(int n, std::uint64_t seed) {
  const auto reg = algolib::make_ising_register("s", static_cast<unsigned>(n));
  core::RegisterSet regs;
  regs.add(reg);
  core::Context ctx;
  ctx.exec.engine = "auto";
  ctx.exec.samples = 1024;
  ctx.exec.seed = seed;
  return core::JobBundle::package(
      std::move(regs),
      algolib::qaoa_sequence(reg, algolib::Graph::cycle(n), algolib::ring_p1_angles()), ctx,
      "qaoa" + std::to_string(n));
}

core::JobBundle ising_job(int n, std::uint64_t seed) {
  const auto reg = algolib::make_ising_register("s", static_cast<unsigned>(n));
  core::RegisterSet regs;
  regs.add(reg);
  core::OperatorSequence seq;
  seq.ops.push_back(algolib::maxcut_ising_descriptor(reg, algolib::Graph::cycle(n)));
  core::Context ctx;
  ctx.exec.engine = "auto";
  ctx.exec.samples = 500;
  ctx.exec.seed = seed;
  core::AnnealPolicy anneal;
  anneal.num_reads = 500;
  anneal.num_sweeps = 100;
  ctx.anneal = anneal;
  return core::JobBundle::package(std::move(regs), std::move(seq), ctx,
                                  "ising" + std::to_string(n));
}

}  // namespace

int main() {
  backend::register_builtin_backends();

  svc::ServiceConfig config;
  config.default_workers = 2;  // two workers per engine pool
  svc::ExecutionService service(config);

  // One batch, every job late-bound by the scheduler.
  std::vector<core::JobBundle> jobs;
  jobs.push_back(qft_job(6, 1));
  jobs.push_back(qft_job(10, 2));
  jobs.push_back(qaoa_job(6, 3));
  jobs.push_back(ising_job(8, 4));
  jobs.push_back(ising_job(16, 5));
  const std::vector<svc::JobId> ids = service.submit_batch(std::move(jobs));
  std::printf("submitted %zu jobs; backlog now %.0f us (gate), %.0f us (anneal)\n", ids.size(),
              service.backlog_us("gate.statevector_simulator"),
              service.backlog_us("anneal.simulated_annealer"));

  // One more submission, cancelled while it queues.
  const svc::JobId doomed = service.submit(qft_job(12, 6));
  const svc::JobHandle victim = service.handle(doomed);
  if (victim.cancel())
    std::printf("job %llu cancelled while %s\n", static_cast<unsigned long long>(doomed),
                svc::to_string(victim.status()));
  else
    std::printf("job %llu already past cancellation (%s)\n",
                static_cast<unsigned long long>(doomed), svc::to_string(victim.status()));

  service.wait_all();

  std::printf("\n%-8s %-28s %-10s %s\n", "job", "routed to", "status", "top outcome");
  for (const svc::JobId id : ids) {
    const svc::JobHandle handle = service.handle(id);
    const core::ExecutionResult result = handle.result();
    std::printf("%-8llu %-28s %-10s %s", static_cast<unsigned long long>(id),
                handle.engine().c_str(), svc::to_string(handle.status()),
                result.counts.most_frequent().c_str());
    if (const auto decision = handle.decision())
      std::printf("   (score %.3f over %zu candidates)", decision->score,
                  decision->considered.size());
    std::printf("\n");
  }
  return 0;
}

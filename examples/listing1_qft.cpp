// The paper's §2 motivational example (Listings 1-4): a 10-qubit QFT
// expressed once as typed descriptors, then executed through the middle
// layer against a Listing-4 target (sx/rz/cx basis, linear coupling).
//
// Shows the layer separation end to end: the algorithmic library emits a
// QFT_TEMPLATE descriptor with an analytic cost hint (twoq = n(n-1)/2 = 45,
// depth ~ n^2 = 100 for n = 10 exact); lowering/transpilation happen only
// once the execution context is known; the same descriptor runs unchanged
// on an all-to-all and on a linear-coupled target.
//
// Build & run:  ./build/examples/listing1_qft

#include <cstdio>

#include "algolib/qft.hpp"
#include "backend/register_backends.hpp"
#include "core/registry.hpp"

using namespace quml;

namespace {

core::Context listing4_context(unsigned coupled_width, int opt_level) {
  core::Context ctx;
  ctx.exec.engine = "gate.aer_simulator";
  ctx.exec.samples = 10000;
  ctx.exec.seed = 42;
  ctx.exec.target.basis_gates = {"sx", "rz", "cx"};
  for (unsigned q = 0; q + 1 < coupled_width; ++q)
    ctx.exec.target.coupling_map.emplace_back(static_cast<int>(q), static_cast<int>(q + 1));
  ctx.exec.options.set("optimization_level", json::Value(static_cast<std::int64_t>(opt_level)));
  return ctx;
}

core::JobBundle qft_bundle(unsigned width, const core::Context& ctx) {
  const core::QuantumDataType reg = algolib::make_phase_register("reg_phase", width);
  core::RegisterSet regs;
  regs.add(reg);
  core::OperatorSequence seq;
  seq.ops.push_back(algolib::qft_descriptor(reg, {}));
  seq.ops.push_back(algolib::measurement_descriptor(reg));
  return core::JobBundle::package(std::move(regs), std::move(seq), ctx, "listing1");
}

}  // namespace

int main() {
  backend::register_builtin_backends();
  const unsigned width = 10;

  const core::CostHint hint = algolib::qft_cost_hint(width, {});
  std::printf("Listing-3 descriptor cost hint: twoq=%lld depth=%lld\n",
              static_cast<long long>(*hint.twoq), static_cast<long long>(*hint.depth));

  // Same intent artifact, two targets: late binding in action.
  std::printf("\n%-22s %-8s %-8s %-8s\n", "target", "depth", "twoq", "swaps");
  for (const bool linear : {false, true}) {
    const core::Context ctx = listing4_context(linear ? width : 0, /*opt_level=*/2);
    const core::ExecutionResult result = core::submit(qft_bundle(width, ctx));
    const json::Value& tmeta = result.metadata.at("transpile");
    std::printf("%-22s %-8lld %-8lld %-8lld\n", linear ? "linear 0-1-...-9" : "all-to-all",
                static_cast<long long>(tmeta.get_int("depth_after", 0)),
                static_cast<long long>(tmeta.get_int("twoq_after", 0)),
                static_cast<long long>(tmeta.get_int("swaps_inserted", 0)));
  }

  // The Listing-1 run: 10 000 shots of QFT|0...0> give near-uniform counts.
  const core::ExecutionResult result = core::submit(qft_bundle(width, listing4_context(width, 2)));
  std::printf("\n10000-shot run: %zu distinct outcomes (uniform over %d expected)\n",
              result.counts.map().size(), 1 << width);
  return result.counts.map().empty() ? 1 : 0;
}

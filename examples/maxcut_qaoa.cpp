// The paper's Fig. 2 workflow: Max-Cut on the 4-node cycle via the gate
// path.  The algorithmic library emits a QAOA descriptor stack
// (PREP_UNIFORM, ISING_COST_PHASE(gamma), MIXER_RX(beta), MEASUREMENT); the
// packaging step writes QDT.json / QOP.json / CTX.json / job.json artifacts;
// the Aer-style backend lowers, transpiles against a 4-qubit ring coupling
// map, executes 4096 shots and decodes.
//
// Expected output (paper §5): optimal cuts 1010 and 0101 (cut = 4) dominate,
// expected cut ~= 3.0 at the p=1 ring-optimal angles.
//
// Build & run:  ./build/examples/maxcut_qaoa [output_dir]

#include <cstdio>
#include <fstream>
#include <string>

#include "algolib/ising.hpp"
#include "algolib/qaoa.hpp"
#include "backend/register_backends.hpp"
#include "core/registry.hpp"

int main(int argc, char** argv) {
  using namespace quml;
  backend::register_builtin_backends();
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  // Shared typed problem: 4 Ising spins, Boolean readout (paper §5).
  const core::QuantumDataType qdt = algolib::make_ising_register("ising_vars", 4);
  const algolib::Graph graph = algolib::Graph::cycle(4);

  // QAOA descriptor stack at the ring-optimal p=1 angles.
  const core::OperatorSequence stack =
      algolib::qaoa_sequence(qdt, graph, algolib::ring_p1_angles());

  // Listing-4 style context: Aer engine, 4096 shots, ring coupling map.
  core::Context ctx;
  ctx.exec.engine = "gate.aer_simulator";
  ctx.exec.samples = 4096;
  ctx.exec.seed = 42;
  ctx.exec.target.basis_gates = {"sx", "rz", "cx"};
  ctx.exec.target.coupling_map = {{0, 1}, {1, 2}, {2, 3}, {3, 0}};
  ctx.exec.options.set("optimization_level", json::Value(std::int64_t{2}));

  // Write the artifacts the paper's Fig. 2 shows flowing between layers.
  const auto write = [&](const std::string& name, const json::Value& doc) {
    std::ofstream file(out_dir + "/" + name);
    file << json::dump_pretty(doc) << "\n";
    std::printf("wrote %s/%s\n", out_dir.c_str(), name.c_str());
  };
  write("QDT.json", qdt.to_json());
  write("QOP.json", stack.to_json());
  write("CTX.json", ctx.to_json());

  core::RegisterSet regs;
  regs.add(qdt);
  const core::JobBundle job = core::JobBundle::package(std::move(regs), stack, ctx, "fig2-maxcut");
  job.save(out_dir + "/job.json");
  std::printf("wrote %s/job.json\n\n", out_dir.c_str());

  const core::ExecutionResult result = core::submit(job);

  std::printf("%-8s %-8s %-6s %s\n", "bits", "shots", "prob", "cut");
  for (const auto& outcome : result.decoded)
    std::printf("%-8s %-8lld %-6.3f %.0f\n", outcome.bitstring.c_str(),
                static_cast<long long>(outcome.count),
                result.counts.probability(outcome.bitstring),
                graph.cut_value_bits(outcome.bitstring));

  const double expected_cut = result.counts.expectation(
      [&](const std::string& bits) { return graph.cut_value_bits(bits); });
  const auto [best_cut, _] = graph.max_cut_exact();
  std::printf("\nexpected cut = %.3f (paper reports 3.0-3.2; optimum = %.0f)\n", expected_cut,
              best_cut);
  std::printf("P(1010) + P(0101) = %.3f\n",
              result.counts.probability("1010") + result.counts.probability("0101"));
  return 0;
}

// The paper's headline demonstration (§5, §7): one typed problem, two
// quantum technologies.  The Max-Cut instance is declared ONCE as a QDT;
// the gate path receives the QAOA operator formulation plus a gate context,
// the annealing path receives the Ising formulation plus an anneal context.
// Both return decoded counts through the same interface, and both find the
// optimal cuts 1010 / 0101.
//
// The demo also runs the variational loop (paper §4.4 "expectation/
// estimation helpers"): starting from deliberately bad angles, the
// coordinate-ascent optimizer recovers the ring-optimal expected cut by
// resubmitting bundles — the middle layer as the inner loop of a hybrid
// workflow.
//
// Build & run:  ./build/examples/portability_demo

#include <cstdio>

#include "algolib/ising.hpp"
#include "algolib/qaoa.hpp"
#include "algolib/variational.hpp"
#include "backend/register_backends.hpp"
#include "core/registry.hpp"
#include "util/stopwatch.hpp"

using namespace quml;

namespace {

double expected_cut(const core::ExecutionResult& result, const algolib::Graph& graph) {
  return result.counts.expectation(
      [&](const std::string& bits) { return graph.cut_value_bits(bits); });
}

core::ExecutionResult run_gate_path(const core::QuantumDataType& qdt,
                                    const algolib::Graph& graph,
                                    const algolib::QaoaAngles& angles) {
  core::Context ctx;
  ctx.exec.engine = "gate.aer_simulator";
  ctx.exec.samples = 4096;
  ctx.exec.seed = 42;
  core::RegisterSet regs;
  regs.add(qdt);
  return core::submit(core::JobBundle::package(
      std::move(regs), algolib::qaoa_sequence(qdt, graph, angles), ctx, "gate-path"));
}

core::ExecutionResult run_anneal_path(const core::QuantumDataType& qdt,
                                      const algolib::Graph& graph) {
  core::Context ctx;
  ctx.exec.engine = "anneal.neal_simulator";
  ctx.exec.seed = 42;
  core::AnnealPolicy policy;
  policy.num_reads = 1000;
  ctx.anneal = policy;
  core::RegisterSet regs;
  regs.add(qdt);
  core::OperatorSequence seq;
  seq.ops.push_back(algolib::maxcut_ising_descriptor(qdt, graph));
  return core::submit(
      core::JobBundle::package(std::move(regs), std::move(seq), ctx, "anneal-path"));
}

}  // namespace

int main() {
  backend::register_builtin_backends();
  const algolib::Graph graph = algolib::Graph::cycle(4);
  const core::QuantumDataType qdt = algolib::make_ising_register("ising_vars", 4);

  std::printf("shared QDT (identical artifact for both backends):\n%s\n\n",
              json::dump_pretty(qdt.to_json()).c_str());

  std::printf("%-28s %-10s %-12s %-14s %s\n", "backend", "samples", "expected cut",
              "P(1010)+P(0101)", "top outcome");
  Stopwatch timer;
  const core::ExecutionResult gate = run_gate_path(qdt, graph, algolib::ring_p1_angles());
  std::printf("%-28s %-10lld %-12.3f %-14.3f %s   (%.1f ms)\n", "gate.aer_simulator",
              static_cast<long long>(gate.counts.total()), expected_cut(gate, graph),
              gate.counts.probability("1010") + gate.counts.probability("0101"),
              gate.counts.most_frequent().c_str(), timer.milliseconds());

  timer.reset();
  const core::ExecutionResult anneal = run_anneal_path(qdt, graph);
  std::printf("%-28s %-10lld %-12.3f %-14.3f %s   (%.1f ms)\n", "anneal.neal_simulator",
              static_cast<long long>(anneal.counts.total()), expected_cut(anneal, graph),
              anneal.counts.probability("1010") + anneal.counts.probability("0101"),
              anneal.counts.most_frequent().c_str(), timer.milliseconds());

  // Hybrid loop: recover good angles from a cold start by resubmitting.
  std::printf("\nvariational angle recovery (gate path, starting from (0.1, 0.1)):\n");
  int iteration = 0;
  const algolib::OptimResult opt = algolib::maximize(
      [&](const std::vector<double>& params) {
        algolib::QaoaAngles angles;
        angles.gammas = {params[0]};
        angles.betas = {params[1]};
        const double value = expected_cut(run_gate_path(qdt, graph, angles), graph);
        if (++iteration % 8 == 1)
          std::printf("  eval %3d: gamma=%.3f beta=%.3f -> cut %.3f\n", iteration, params[0],
                      params[1], value);
        return value;
      },
      {0.1, 0.1});
  std::printf("best: gamma=%.4f beta=%.4f expected cut=%.3f after %d evaluations\n",
              opt.best_params[0], opt.best_params[1], opt.best_value, opt.evaluations);
  std::printf("(ring-optimal analytic angles: gamma=pi/4=0.7854, beta=pi/8=0.3927, cut=3.0)\n");
  return 0;
}

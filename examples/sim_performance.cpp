// Demonstrates the simulator's performance machinery: the gate-fusion pass
// (runs of 1q gates collapse into one matrix, diagonal runs into one diagonal
// application), the compact bit-insertion kernels behind it, and the memory
// budget that gates wide-register construction.
//
// Prints fused-vs-unfused timings and the fusion statistics for a dense
// variational-style circuit, then shows the budget arithmetic for 26..30
// qubit registers.

#include <cstdio>

#include "sim/engine.hpp"
#include "sim/fusion.hpp"
#include "sim/statevector.hpp"
#include "util/stopwatch.hpp"

using namespace quml;

namespace {

sim::Circuit dense_variational_circuit(int n, int layers) {
  sim::Circuit c(n, 0);
  for (int layer = 0; layer < layers; ++layer) {
    for (int q = 0; q < n; ++q) {
      c.rz(0.13 * (layer + 1), q);
      c.h(q);
      c.rz(-0.21 * (layer + 1), q);
      c.t(q);
    }
    for (int q = 0; q + 1 < n; ++q) c.cx(q, q + 1);
    for (int q = 0; q + 1 < n; ++q) c.rzz(0.4, q, q + 1);
  }
  return c;
}

}  // namespace

int main() {
  std::printf("=== simulator performance: fusion + kernels + memory budget ===\n\n");

  const int n = 18;
  const sim::Circuit c = dense_variational_circuit(n, 6);

  sim::FusionStats stats;
  const auto fused = sim::fuse_unitaries(c, &stats);
  std::printf("fusion pass on a %d-qubit circuit:\n", n);
  std::printf("  gates in            %zu\n", stats.gates_in);
  std::printf("  fused ops out       %zu\n", stats.ops_out);
  std::printf("  1q gates absorbed   %zu\n", stats.fused_1q);
  std::printf("  multi-q absorbed    %zu\n", stats.fused_multiq);
  std::printf("  diagonal runs       %zu\n", stats.diag_runs);
  std::printf("  k-qubit blocks      %zu (widest %d qubits)\n\n", stats.kq_blocks,
              stats.max_block_qubits);

  // Gate-by-gate native kernels: Statevector::apply_unitaries itself now
  // routes through the fusion pass, so the unfused reference applies each
  // instruction explicitly.
  Stopwatch unfused_timer;
  sim::Statevector unfused(n);
  for (const auto& inst : c.instructions())
    if (inst.gate != sim::Gate::Barrier) unfused.apply(inst);
  const double unfused_ms = unfused_timer.milliseconds();

  Stopwatch fused_timer;
  sim::Statevector fused_state(n);
  sim::apply_fused(fused_state, fused);
  const double fused_ms = fused_timer.milliseconds();

  std::printf("gate-by-gate apply    %8.1f ms\n", unfused_ms);
  std::printf("fused apply           %8.1f ms   (%.2fx)\n", fused_ms,
              fused_ms > 0.0 ? unfused_ms / fused_ms : 0.0);
  std::printf("fidelity(fused, unfused) = %.12f\n\n", fused_state.fidelity(unfused));

  std::printf("memory budget: %llu bytes\n",
              static_cast<unsigned long long>(sim::Statevector::memory_budget_bytes()));
  for (int w = 26; w <= sim::Statevector::kMaxQubits; ++w) {
    const auto need = sim::Statevector::required_bytes(w);
    std::printf("  %d qubits need %12llu bytes -> %s\n", w,
                static_cast<unsigned long long>(need),
                need <= sim::Statevector::memory_budget_bytes() ? "constructible"
                                                                : "over budget");
  }
  return 0;
}

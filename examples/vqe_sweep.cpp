// vqe_sweep — variational angle-grid tuning through the sweep engine.
//
// The dominant variational workload (QAOA/VQE) executes one parameterized
// circuit across a grid of angle bindings.  This example declares the QAOA
// angles as free bundle parameters ("$gamma", "$beta"), submits an 8x8 grid
// through svc::ExecutionService::submit_sweep — which lowers, transpiles and
// fusion-plans the circuit ONCE and re-binds only the angle-dependent blocks
// per grid point — and reports the best expected cut found.
//
// Usage: vqe_sweep [grid_side] [qubits] [artifact_dir]
//
// With an artifact_dir, the parameterized bundle and the binding grid are
// also written as sweep_job.json / sweep_params.json — the artifacts
// `quml_run sweep_job.json --sweep sweep_params.json` consumes (the tool
// smoke tests run exactly that chain).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "algolib/graph.hpp"
#include "algolib/ising.hpp"
#include "algolib/qaoa.hpp"
#include "algolib/qft.hpp"
#include "algolib/stateprep.hpp"
#include "backend/register_backends.hpp"
#include "core/bundle.hpp"
#include "svc/execution_service.hpp"
#include "util/errors.hpp"

int main(int argc, char** argv) {
  using namespace quml;
  backend::register_builtin_backends();
  const int side = argc > 1 ? std::atoi(argv[1]) : 8;
  const int n = argc > 2 ? std::atoi(argv[2]) : 10;
  const std::string artifact_dir = argc > 3 ? argv[3] : "";
  if (side < 1 || n < 3 || n > 20) {
    std::fprintf(stderr, "usage: vqe_sweep [grid_side >= 1] [qubits in 3..20] [artifact_dir]\n");
    return 2;
  }

  try {
    // Problem: Max-Cut on a random cubic graph.
    const algolib::Graph graph = algolib::Graph::random_cubic(n, /*seed=*/7);
    const auto reg = algolib::make_ising_register("cut", static_cast<unsigned>(n));

    // One QAOA layer with FREE angles: descriptors reference the declared
    // bundle parameters instead of carrying numbers.
    core::OperatorSequence seq;
    seq.ops.push_back(algolib::prep_uniform_descriptor(reg));
    core::OperatorDescriptor cost = algolib::cost_phase_descriptor(reg, graph, 0.0);
    cost.params.set("gamma", json::Value("$gamma"));
    core::OperatorDescriptor mixer = algolib::mixer_descriptor(reg, 0.0);
    mixer.params.set("beta", json::Value("$beta"));
    seq.ops.push_back(std::move(cost));
    seq.ops.push_back(std::move(mixer));
    seq.ops.push_back(algolib::measurement_descriptor(reg));

    core::Context ctx;
    ctx.exec.engine = "gate.statevector_simulator";
    ctx.exec.samples = 512;
    ctx.exec.seed = 2026;
    core::JobBundle bundle = core::JobBundle::package(
        core::RegisterSet(std::vector<core::QuantumDataType>{reg}), std::move(seq), ctx,
        "vqe-sweep", {"gamma", "beta"});

    // The (gamma, beta) grid.
    constexpr double kPi = 3.14159265358979323846;
    std::vector<std::vector<double>> grid;
    for (int i = 0; i < side; ++i)
      for (int j = 0; j < side; ++j)
        grid.push_back({kPi * (i + 0.5) / (2.0 * side), kPi * (j + 0.5) / (4.0 * side)});

    if (!artifact_dir.empty()) {
      bundle.save(artifact_dir + "/sweep_job.json");
      json::Value params = json::Value::object();
      json::Array rows;
      for (const auto& row : grid) {
        json::Array values;
        for (const double v : row) values.emplace_back(v);
        rows.emplace_back(std::move(values));
      }
      params.set("bindings", json::Value(std::move(rows)));
      std::ofstream out(artifact_dir + "/sweep_params.json");
      if (!out) throw BackendError("cannot write '" + artifact_dir + "/sweep_params.json'");
      out << json::dump_pretty(params) << "\n";
      std::printf("wrote %s/sweep_job.json and %s/sweep_params.json\n", artifact_dir.c_str(),
                  artifact_dir.c_str());
    }

    svc::ExecutionService service;
    const svc::SweepHandle sweep = service.submit_sweep(bundle, grid);
    std::printf("submitted %zu bindings (engine %s, %s)\n", sweep.size(),
                sweep.engine().c_str(),
                sweep.plan_cached() ? "bind-once/run-many plan cached"
                                    : "per-binding fallback");
    sweep.wait();

    double best_cut = -1.0;
    std::size_t best = 0;
    for (std::size_t i = 0; i < sweep.size(); ++i) {
      const core::ExecutionResult result = sweep.result(i);
      const double expected = result.counts.expectation(
          [&](const std::string& bits) { return graph.cut_value_bits(bits); });
      if (expected > best_cut) {
        best_cut = expected;
        best = i;
      }
    }
    const auto [opt_cut, opt_masks] = graph.max_cut_exact();
    std::printf("best grid point: gamma=%.4f beta=%.4f  expected cut %.3f "
                "(optimum %.1f, ratio %.3f)\n",
                grid[best][0], grid[best][1], best_cut, opt_cut, best_cut / opt_cut);
    (void)opt_masks;
    return 0;
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}

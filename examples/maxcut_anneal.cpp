// The paper's Fig. 3 workflow: the SAME typed Max-Cut problem on the
// annealing path.  The algorithmic library emits a single ISING_PROBLEM
// descriptor declaring E(s) = sum J_ij s_i s_j on the cycle edges (h = 0);
// the neal-style backend draws num_reads = 1000 samples.
//
// Only the operator formulation and the context differ from maxcut_qaoa.cpp;
// the QDT artifact is byte-identical — that is the paper's portability claim.
//
// Build & run:  ./build/examples/maxcut_anneal

#include <cstdio>

#include "algolib/ising.hpp"
#include "backend/register_backends.hpp"
#include "core/registry.hpp"

int main() {
  using namespace quml;
  backend::register_builtin_backends();

  // Identical QDT to the gate path.
  const core::QuantumDataType qdt = algolib::make_ising_register("ising_vars", 4);
  const algolib::Graph graph = algolib::Graph::cycle(4);

  // One ISING_PROBLEM descriptor instead of the QAOA stack.
  core::OperatorSequence program;
  program.ops.push_back(algolib::maxcut_ising_descriptor(qdt, graph));
  std::printf("ISING_PROBLEM artifact:\n%s\n\n",
              json::dump_pretty(program.ops[0].to_json()).c_str());

  // Anneal context (paper §5: num_reads = 1000).
  core::Context ctx;
  ctx.exec.engine = "anneal.neal_simulator";  // alias of anneal.simulated_annealer
  ctx.exec.seed = 42;
  core::AnnealPolicy anneal;
  anneal.num_reads = 1000;
  anneal.num_sweeps = 1000;
  ctx.anneal = anneal;

  core::RegisterSet regs;
  regs.add(qdt);
  const core::JobBundle job =
      core::JobBundle::package(std::move(regs), std::move(program), ctx, "fig3-maxcut");
  const core::ExecutionResult result = core::submit(job);

  std::printf("%-8s %-8s %-8s %s\n", "bits", "reads", "energy", "cut");
  for (const auto& outcome : result.decoded)
    std::printf("%-8s %-8lld %-8.1f %.0f\n", outcome.bitstring.c_str(),
                static_cast<long long>(outcome.count), outcome.energy,
                graph.cut_value_bits(outcome.bitstring));

  std::printf("\nground energy  = %.1f (cut %.0f)\n",
              result.metadata.get_double("ground_energy", 0.0),
              algolib::cut_from_ising_energy(
                  graph, result.metadata.get_double("ground_energy", 0.0)));
  std::printf("ground fraction = %.3f over %lld reads\n",
              result.metadata.get_double("ground_fraction", 0.0),
              static_cast<long long>(result.metadata.get_int("num_reads", 0)));
  std::printf("beta range      = [%.3f, %.3f] (auto)\n",
              result.metadata.get_double("beta_min", 0.0),
              result.metadata.get_double("beta_max", 0.0));
  return 0;
}

// Quantum phase estimation through the middle layer (paper §4.4 names "QPE
// scaffolding" among the algorithmic-library primitives).
//
// A QPE_TEMPLATE descriptor estimates the eigenphase of a diagonal phase
// oracle U|1> = e^{2 pi i phi}|1> into a typed PHASE_REGISTER.  Because the
// counting register carries phase_scale = 1/2^t, decoding to "turns" is
// automatic — no manual bit fiddling, the paper's §2 complaint about
// implicit readout conventions.
//
// Build & run:  ./build/examples/qpe_demo

#include <cstdio>

#include "algolib/arithmetic.hpp"
#include "algolib/phase.hpp"
#include "algolib/qft.hpp"
#include "backend/register_backends.hpp"
#include "core/registry.hpp"

int main() {
  using namespace quml;
  backend::register_builtin_backends();

  const unsigned t = 5;  // counting precision: 5 bits -> resolution 1/32
  const core::QuantumDataType counting = algolib::make_phase_register("count", t);
  const core::QuantumDataType eigen = algolib::make_flag_register("eigen");

  core::Context ctx;
  ctx.exec.engine = "gate.statevector_simulator";
  ctx.exec.samples = 4096;
  ctx.exec.seed = 7;

  std::printf("estimating eigenphases with a %u-bit counting register (resolution 1/%u)\n\n", t,
              1u << t);
  std::printf("%-12s %-12s %-10s %s\n", "true phase", "estimate", "P(mode)", "exact?");

  for (const double true_phase : {0.25, 0.15625 /* 5/32 */, 0.3, 0.7123}) {
    core::RegisterSet regs;
    regs.add(counting);
    regs.add(eigen);
    core::OperatorSequence seq;
    seq.ops.push_back(algolib::qpe_descriptor(counting, eigen, true_phase));
    seq.ops.push_back(algolib::measurement_descriptor(counting));
    const core::ExecutionResult result = core::submit(
        core::JobBundle::package(std::move(regs), std::move(seq), ctx, "qpe"));

    // Modal decoded estimate.
    const std::string mode = result.counts.most_frequent();
    double estimate = 0.0;
    for (const auto& outcome : result.decoded)
      if (outcome.bitstring == mode) estimate = outcome.value.real_value;
    const bool exact =
        std::abs(true_phase * (1u << t) - static_cast<double>(static_cast<int>(
                                              true_phase * (1u << t)))) < 1e-12;
    std::printf("%-12.5f %-12.5f %-10.3f %s\n", true_phase, estimate,
                result.counts.probability(mode), exact ? "yes (deterministic)" : "no (modal)");
  }

  std::printf("\nexact multiples of 1/32 are recovered with probability 1; other phases\n"
              "concentrate on the two neighbouring grid points (standard QPE behaviour).\n");
  return 0;
}

// Typed quantum arithmetic (paper §4.2: "a modular adder that is a primitive
// to add two qubit integers modulo a prime modulus, which is a main
// component of the Shor algorithm").
//
// Exercises the arithmetic library end to end on the gate backend:
//   * ADDER_CONST_TEMPLATE       — Draper QFT adder, |a> -> |a + c mod 2^n>
//   * MODULAR_ADDER_CONST_TEMPLATE — Beauregard gadget, |a> -> |a + c mod M>
//   * COMPARATOR_CONST_TEMPLATE  — flag ^= (a < c), data register restored
// All operands are typed UINT registers, so results decode as integers.
//
// Build & run:  ./build/examples/modular_arithmetic

#include <cstdio>

#include "algolib/arithmetic.hpp"
#include "algolib/qft.hpp"
#include "algolib/stateprep.hpp"
#include "backend/register_backends.hpp"
#include "core/registry.hpp"

using namespace quml;

namespace {

core::Context ctx() {
  core::Context c;
  c.exec.engine = "gate.statevector_simulator";
  c.exec.samples = 256;
  c.exec.seed = 1;
  return c;
}

std::uint64_t run_and_decode(core::RegisterSet regs, core::OperatorSequence seq) {
  const core::ExecutionResult result =
      core::submit(core::JobBundle::package(std::move(regs), std::move(seq), ctx(), "arith"));
  return result.decoded.at(0).value.uint_value;
}

}  // namespace

int main() {
  backend::register_builtin_backends();

  const core::QuantumDataType x = algolib::make_uint_register("x", 4);
  const core::QuantumDataType scratch = algolib::make_flag_register("scratch");
  const core::QuantumDataType flag = algolib::make_flag_register("flag");

  std::printf("plain Draper adder on a 4-bit UINT register (mod 16):\n");
  for (const std::uint64_t a : {3ull, 11ull}) {
    for (const std::int64_t c : {5ll, 9ll}) {
      core::RegisterSet regs;
      regs.add(x);
      core::OperatorSequence seq;
      seq.ops.push_back(algolib::basis_state_prep_descriptor(x, core::TypedValue::from_uint(a)));
      seq.ops.push_back(algolib::adder_const_descriptor(x, c));
      seq.ops.push_back(algolib::measurement_descriptor(x));
      std::printf("  %llu + %lld mod 16 = %llu\n", static_cast<unsigned long long>(a),
                  static_cast<long long>(c),
                  static_cast<unsigned long long>(run_and_decode(std::move(regs), std::move(seq))));
    }
  }

  const std::int64_t modulus = 13;
  std::printf("\nBeauregard modular adder (mod %lld, prime — the Shor building block):\n",
              static_cast<long long>(modulus));
  for (const std::uint64_t a : {6ull, 12ull}) {
    for (const std::int64_t c : {4ll, 9ll}) {
      core::RegisterSet regs;
      regs.add(x);
      regs.add(scratch);
      regs.add(flag);
      core::OperatorSequence seq;
      seq.ops.push_back(algolib::basis_state_prep_descriptor(x, core::TypedValue::from_uint(a)));
      seq.ops.push_back(algolib::modular_adder_const_descriptor(x, scratch, flag, c, modulus));
      seq.ops.push_back(algolib::measurement_descriptor(x));
      std::printf("  %llu + %lld mod %lld = %llu\n", static_cast<unsigned long long>(a),
                  static_cast<long long>(c), static_cast<long long>(modulus),
                  static_cast<unsigned long long>(run_and_decode(std::move(regs), std::move(seq))));
    }
  }

  std::printf("\ncomparator: flag ^= (a < threshold), data register untouched:\n");
  for (const std::uint64_t a : {2ull, 9ull}) {
    core::RegisterSet regs;
    regs.add(x);
    regs.add(scratch);
    regs.add(flag);
    core::OperatorSequence seq;
    seq.ops.push_back(algolib::basis_state_prep_descriptor(x, core::TypedValue::from_uint(a)));
    seq.ops.push_back(algolib::comparator_const_descriptor(x, scratch, flag, 7));
    seq.ops.push_back(algolib::measurement_descriptor(flag));
    const core::ExecutionResult result = core::submit(
        core::JobBundle::package(std::move(regs), std::move(seq), ctx(), "cmp"));
    std::printf("  (%llu < 7) -> flag = %s\n", static_cast<unsigned long long>(a),
                result.counts.most_frequent().c_str());
  }

  // Cost transparency: the descriptors carried analytic hints all along.
  const core::OperatorDescriptor mod_add =
      algolib::modular_adder_const_descriptor(x, scratch, flag, 4, modulus);
  std::printf("\nmodular adder cost hint: twoq=%lld depth=%lld ancillas=%lld\n",
              static_cast<long long>(mod_add.cost_hint->twoq.value_or(0)),
              static_cast<long long>(mod_add.cost_hint->depth.value_or(0)),
              static_cast<long long>(mod_add.cost_hint->ancillas.value_or(0)));
  return 0;
}

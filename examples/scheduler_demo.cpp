// Cost-hint-driven scheduling (paper §2): "a scheduler cannot choose an
// appropriate backend [...] or estimate queue and runtime" without cost
// metadata.  Here a mixed job batch (QFTs of several widths, QAOA, Ising
// problems) is placed onto a heterogeneous fleet using nothing but the
// descriptors' accumulated cost hints, and the hint-aware policy is compared
// against hint-blind round robin.  The chosen engine then actually executes
// one job, closing the loop.
//
// Build & run:  ./build/examples/scheduler_demo

#include <cstdio>

#include "algolib/ising.hpp"
#include "algolib/qaoa.hpp"
#include "algolib/qft.hpp"
#include "backend/register_backends.hpp"
#include "core/registry.hpp"
#include "sched/scheduler.hpp"

using namespace quml;

namespace {

core::JobBundle qft_job(unsigned width) {
  const auto reg = algolib::make_phase_register("p", width);
  core::RegisterSet regs;
  regs.add(reg);
  core::OperatorSequence seq;
  seq.ops.push_back(algolib::qft_descriptor(reg, {}));
  seq.ops.push_back(algolib::measurement_descriptor(reg));
  core::Context ctx;
  ctx.exec.samples = 1024;
  return core::JobBundle::package(std::move(regs), std::move(seq), ctx,
                                  "qft" + std::to_string(width));
}

core::JobBundle qaoa_job(int n) {
  const auto reg = algolib::make_ising_register("s", static_cast<unsigned>(n));
  core::RegisterSet regs;
  regs.add(reg);
  core::Context ctx;
  ctx.exec.samples = 4096;
  return core::JobBundle::package(
      std::move(regs),
      algolib::qaoa_sequence(reg, algolib::Graph::cycle(n), algolib::ring_p1_angles()), ctx,
      "qaoa" + std::to_string(n));
}

core::JobBundle ising_job(int n) {
  const auto reg = algolib::make_ising_register("s", static_cast<unsigned>(n));
  core::RegisterSet regs;
  regs.add(reg);
  core::OperatorSequence seq;
  seq.ops.push_back(algolib::maxcut_ising_descriptor(reg, algolib::Graph::cycle(n)));
  core::Context ctx;
  ctx.exec.samples = 1000;
  core::AnnealPolicy anneal;
  anneal.num_reads = 1000;
  anneal.num_sweeps = 200;
  ctx.anneal = anneal;
  return core::JobBundle::package(std::move(regs), std::move(seq), ctx,
                                  "ising" + std::to_string(n));
}

}  // namespace

int main() {
  backend::register_builtin_backends();

  // A heterogeneous fleet of capability descriptors.
  sched::BackendCapability premium;
  premium.name = "gate.statevector_simulator";
  premium.kind = "gate";
  premium.num_qubits = 26;
  premium.twoq_error = 1e-4;
  premium.twoq_time_us = 0.5;
  sched::BackendCapability budget;
  budget.name = "gate.budget_device";
  budget.kind = "gate";
  budget.num_qubits = 12;
  budget.twoq_error = 5e-3;
  budget.twoq_time_us = 0.1;
  sched::BackendCapability annealer;
  annealer.name = "anneal.simulated_annealer";
  annealer.kind = "anneal";
  annealer.num_qubits = 64;
  const std::vector<sched::BackendCapability> fleet{premium, budget, annealer};

  std::vector<core::JobBundle> jobs;
  jobs.push_back(qft_job(6));
  jobs.push_back(qft_job(14));
  jobs.push_back(qaoa_job(4));
  jobs.push_back(qaoa_job(8));
  jobs.push_back(ising_job(4));
  jobs.push_back(ising_job(16));

  std::printf("%-8s %-10s %-8s | per-backend estimates (duration us / success)\n", "job",
              "qubits", "twoq");
  for (const auto& job : jobs) {
    const core::CostHint cost = job.operators.accumulated_cost();
    std::printf("%-8s %-10u %-8lld |", job.job_id.c_str(), job.registers.total_width(),
                static_cast<long long>(cost.twoq.value_or(0)));
    for (const auto& cap : fleet) {
      const sched::JobEstimate est = sched::estimate(job, cap);
      if (est.feasible)
        std::printf("  %s: %.0f/%.3f", cap.name.substr(0, 12).c_str(), est.duration_us,
                    est.success_prob);
      else
        std::printf("  %s: infeasible", cap.name.substr(0, 12).c_str());
    }
    std::printf("\n");
  }

  std::printf("\nchoices (quality-weighted):\n");
  for (const auto& job : jobs) {
    const sched::Decision decision = sched::choose_backend(job, fleet);
    std::printf("  %-8s -> %s (score %.3f)\n", job.job_id.c_str(), decision.backend.c_str(),
                decision.score);
  }

  const sched::QueueReport aware = sched::simulate_queue(jobs, fleet, sched::Policy::CostHintAware);
  const sched::QueueReport blind = sched::simulate_queue(jobs, fleet, sched::Policy::RoundRobin);
  std::printf("\nqueue simulation: makespan %.0f us with cost hints vs %.0f us round-robin"
              " (%.1fx)\n",
              aware.makespan_us, blind.makespan_us, blind.makespan_us / aware.makespan_us);

  // Close the loop: run the Ising job on its chosen engine.
  core::JobBundle chosen_job = ising_job(4);
  const sched::Decision decision = sched::choose_backend(chosen_job, fleet);
  chosen_job.context->exec.engine = decision.backend;
  const core::ExecutionResult result = core::submit(chosen_job);
  std::printf("\nexecuted %s on %s: top outcome %s, ground energy %.1f\n",
              chosen_job.job_id.c_str(), decision.backend.c_str(),
              result.counts.most_frequent().c_str(),
              result.metadata.get_double("ground_energy", 0.0));
  return 0;
}

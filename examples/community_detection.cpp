// Community detection via Max-Cut — one of the application domains the
// paper's §5 motivates ("clustering and community detection").
//
// A planted two-community graph (dense inside, sparse across) is declared
// once as a typed Ising problem; the annealing path recovers the planted
// partition, and the decoded AS_BOOL labels *are* the community assignment —
// no manual bit handling anywhere.  The same bundle is then re-run with a
// noisy gate context to show a degraded-but-recognizable partition, the
// realistic NISQ contrast.
//
// Build & run:  ./build/examples/community_detection

#include <cstdio>

#include "algolib/ising.hpp"
#include "algolib/qaoa.hpp"
#include "backend/register_backends.hpp"
#include "core/registry.hpp"
#include "util/rng.hpp"

using namespace quml;

namespace {

/// Planted bipartition: nodes [0, half) vs [half, n); cross edges dense,
/// intra edges sparse — Max-Cut recovers the plant.
algolib::Graph planted_graph(int n, std::uint64_t seed) {
  Rng rng(seed);
  algolib::Graph g;
  g.n = n;
  const int half = n / 2;
  for (int i = 0; i < n; ++i)
    for (int j = i + 1; j < n; ++j) {
      const bool cross = (i < half) != (j < half);
      const double p = cross ? 0.9 : 0.15;
      if (rng.next_double() < p) g.edges.push_back({i, j, 1.0});
    }
  return g;
}

std::string plant_string(int n) {
  // Readout convention: MSB-first, node i at character n-1-i.
  std::string s(static_cast<std::size_t>(n), '0');
  for (int i = 0; i < n / 2; ++i) s[static_cast<std::size_t>(n - 1 - i)] = '1';
  return s;
}

int label_disagreement(const std::string& bits, const std::string& plant) {
  int direct = 0, flipped = 0;
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] != plant[i]) ++direct;
    if (bits[i] == plant[i]) ++flipped;
  }
  return std::min(direct, flipped);  // community labels are symmetric
}

}  // namespace

int main() {
  backend::register_builtin_backends();
  const int n = 12;
  const algolib::Graph graph = planted_graph(n, 2026);
  const std::string plant = plant_string(n);
  std::printf("planted communities: %s vs complement (%d nodes, %zu edges)\n\n", plant.c_str(),
              n, graph.edges.size());

  const core::QuantumDataType qdt =
      algolib::make_ising_register("communities", static_cast<unsigned>(n));

  // Path 1: annealer.
  {
    core::RegisterSet regs;
    regs.add(qdt);
    core::OperatorSequence seq;
    seq.ops.push_back(algolib::maxcut_ising_descriptor(qdt, graph));
    core::Context ctx;
    ctx.exec.engine = "anneal.neal_simulator";
    ctx.exec.seed = 42;
    core::AnnealPolicy policy;
    policy.num_reads = 500;
    policy.num_sweeps = 500;
    ctx.anneal = policy;
    const auto result =
        core::submit(core::JobBundle::package(std::move(regs), std::move(seq), ctx, "comm"));
    const std::string found = result.counts.most_frequent();
    std::printf("annealer partition : %s  (cut %.0f, %d/%d labels off the plant)\n",
                found.c_str(), graph.cut_value_bits(found), label_disagreement(found, plant), n);
    const auto [best, _] = graph.max_cut_exact();
    std::printf("exact optimum      : cut %.0f -> %s\n\n", best,
                graph.cut_value_bits(found) >= best - 1e-9 ? "annealer found an optimal cut"
                                                           : "annealer is near-optimal");
  }

  // Path 2: noisy gate device, same typed problem in QAOA form.
  {
    core::RegisterSet regs;
    regs.add(qdt);
    core::Context ctx;
    ctx.exec.engine = "gate.statevector_simulator";
    ctx.exec.samples = 8192;
    ctx.exec.seed = 42;
    core::NoisePolicy noise;
    noise.enabled = true;
    noise.depolarizing_2q = 0.01;
    ctx.noise = noise;
    const auto result = core::submit(core::JobBundle::package(
        std::move(regs), algolib::qaoa_sequence(qdt, graph, algolib::ring_p1_angles()), ctx,
        "comm-noisy"));
    const std::string found = result.counts.most_frequent();
    const double e_cut = result.counts.expectation(
        [&](const std::string& bits) { return graph.cut_value_bits(bits); });
    std::printf("noisy QAOA p=1     : top %s (cut %.0f), E[cut] %.2f — NISQ-realistic contrast\n",
                found.c_str(), graph.cut_value_bits(found), e_cut);
  }
  return 0;
}

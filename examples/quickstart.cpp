// Quickstart: the middle-layer flow from the paper's motivational example
// (§2, Listings 1-4) in four steps:
//
//   1. declare WHAT the register means      (Quantum Data Type descriptor)
//   2. declare WHICH transformation to run  (Quantum Operator Descriptor)
//   3. declare HOW to execute it            (Context descriptor)
//   4. package + submit + decode            (bundle -> backend -> typed result)
//
// Unlike the Qiskit version in the paper's Listing 1, the program never
// mentions gates: the QFT is a logical template, the register carries its
// own decoding rules, and the engine/basis/coupling constraints live in the
// context, swappable without touching steps 1-2.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "algolib/qft.hpp"
#include "algolib/stateprep.hpp"
#include "backend/register_backends.hpp"
#include "core/registry.hpp"

int main() {
  using namespace quml;
  backend::register_builtin_backends();

  // 1. Typed data: a 10-carrier phase register, fixed-point phase on the
  //    unit circle with resolution 1/1024 (paper Listing 2).
  const core::QuantumDataType reg = algolib::make_phase_register("reg_phase", 10);
  std::printf("QDT artifact:\n%s\n\n", json::dump_pretty(reg.to_json()).c_str());

  // 2. Intent: prepare the phase 1/4 turn, apply an exact forward QFT, an
  //    inverse QFT, and measure.  The QFT descriptor carries the Listing-3
  //    cost hint (twoq = 45, depth ~ 100) and an explicit result schema.
  core::OperatorSequence program;
  program.ops.push_back(
      algolib::basis_state_prep_descriptor(reg, core::TypedValue::from_phase(0.25)));
  algolib::QftParams forward;
  algolib::QftParams backward;
  backward.inverse = true;
  program.ops.push_back(algolib::qft_descriptor(reg, forward));
  program.ops.push_back(algolib::qft_descriptor(reg, backward));
  program.ops.push_back(algolib::measurement_descriptor(reg));

  const core::CostHint budget = program.accumulated_cost();
  std::printf("accumulated cost hint: twoq=%lld depth=%lld\n\n",
              static_cast<long long>(budget.twoq.value_or(0)),
              static_cast<long long>(budget.depth.value_or(0)));

  // 3. Execution policy: Aer-style state-vector engine, 10 000 shots,
  //    IBM-like basis and a linear coupling map (paper Listing 4).
  core::Context ctx;
  ctx.exec.engine = "gate.aer_simulator";  // alias of gate.statevector_simulator
  ctx.exec.samples = 10000;
  ctx.exec.seed = 42;
  ctx.exec.target.basis_gates = {"sx", "rz", "cx"};
  for (int q = 0; q + 1 < 10; ++q) ctx.exec.target.coupling_map.emplace_back(q, q + 1);
  ctx.exec.options.set("optimization_level", json::Value(std::int64_t{2}));

  // 4. Package and submit; decoding is automatic (AS_PHASE, LSB_0, 1/1024).
  core::RegisterSet registers;
  registers.add(reg);
  const core::JobBundle job =
      core::JobBundle::package(std::move(registers), std::move(program), ctx, "quickstart");
  const core::ExecutionResult result = core::submit(job);

  std::printf("decoded outcomes (QFT then IQFT returns the prepared phase):\n");
  for (const auto& outcome : result.decoded)
    std::printf("  %s  ->  %s   x%lld\n", outcome.bitstring.c_str(),
                outcome.value.str().c_str(), static_cast<long long>(outcome.count));

  const json::Value& tmeta = result.metadata.at("transpile");
  std::printf("\ntranspile: depth %lld -> %lld, twoq %lld -> %lld, swaps %lld\n",
              static_cast<long long>(tmeta.get_int("depth_before", 0)),
              static_cast<long long>(tmeta.get_int("depth_after", 0)),
              static_cast<long long>(tmeta.get_int("twoq_before", 0)),
              static_cast<long long>(tmeta.get_int("twoq_after", 0)),
              static_cast<long long>(tmeta.get_int("swaps_inserted", 0)));
  return 0;
}
